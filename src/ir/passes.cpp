#include "ir/passes.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <optional>
#include <set>

#include "ir/cfg.hpp"
#include "ir/lower.hpp"

namespace pdc::ir {

namespace {

struct ConstVal {
  IrType type;
  long long i = 0;
  double f = 0;
};

bool reads(const Instr& in, int reg) {
  if (in.a == reg || in.b == reg) return true;
  for (int arg : in.args)
    if (arg == reg) return true;
  return false;
}

/// Replaces register uses (not definitions).
void replace_uses(Instr& in, int from, int to) {
  if (in.a == from) in.a = to;
  if (in.b == from) in.b = to;
  for (int& arg : in.args)
    if (arg == from) arg = to;
}

std::optional<ConstVal> eval_unary(const Instr& in, const ConstVal& a) {
  ConstVal r;
  r.type = in.type;
  switch (in.op) {
    case Op::NegI: r.i = -a.i; return r;
    case Op::NegF: r.f = -a.f; return r;
    case Op::NotI: r.i = a.i == 0 ? 1 : 0; return r;
    case Op::BoolI: r.i = a.i != 0 ? 1 : 0; return r;
    case Op::I2F: r.f = static_cast<double>(a.i); return r;
    case Op::Mov:
      r = a;
      return r;
    default: return std::nullopt;
  }
}

std::optional<ConstVal> eval_binary(const Instr& in, const ConstVal& a, const ConstVal& b) {
  ConstVal r;
  r.type = in.type;
  switch (in.op) {
    case Op::AddI: r.i = a.i + b.i; return r;
    case Op::SubI: r.i = a.i - b.i; return r;
    case Op::MulI: r.i = a.i * b.i; return r;
    case Op::AddF: r.f = a.f + b.f; return r;
    case Op::SubF: r.f = a.f - b.f; return r;
    case Op::MulF: r.f = a.f * b.f; return r;
    case Op::DivF: r.f = a.f / b.f; return r;
    case Op::LtI: r.i = a.i < b.i; return r;
    case Op::LeI: r.i = a.i <= b.i; return r;
    case Op::GtI: r.i = a.i > b.i; return r;
    case Op::GeI: r.i = a.i >= b.i; return r;
    case Op::EqI: r.i = a.i == b.i; return r;
    case Op::NeI: r.i = a.i != b.i; return r;
    case Op::LtF: r.i = a.f < b.f; return r;
    case Op::LeF: r.i = a.f <= b.f; return r;
    case Op::GtF: r.i = a.f > b.f; return r;
    case Op::GeF: r.i = a.f >= b.f; return r;
    case Op::EqF: r.i = a.f == b.f; return r;
    case Op::NeF: r.i = a.f != b.f; return r;
    // DivI/ModI fold only when the divisor is non-zero (handled below).
    default: return std::nullopt;
  }
}

/// Instructions safely removable when their destination is dead. LoadIdx is
/// excluded: it can trap on out-of-bounds, and removal would hide the trap.
bool is_removable(const Instr& in) {
  return is_pure(in.op) || in.op == Op::ConstI || in.op == Op::ConstF ||
         in.op == Op::LoadVar;
}

struct Liveness {
  std::vector<std::vector<bool>> in, out;
};

Liveness compute_liveness(const IrFunction& fn) {
  const auto nblocks = fn.blocks.size();
  const auto nregs = static_cast<std::size_t>(fn.num_regs);
  Liveness lv;
  lv.in.assign(nblocks, std::vector<bool>(nregs, false));
  lv.out.assign(nblocks, std::vector<bool>(nregs, false));
  bool fixed = false;
  while (!fixed) {
    fixed = true;
    for (std::size_t b = nblocks; b-- > 0;) {
      std::vector<bool> out(nregs, false);
      for (int s : fn.successors(static_cast<int>(b)))
        for (std::size_t r = 0; r < nregs; ++r)
          out[r] = out[r] || lv.in[static_cast<std::size_t>(s)][r];
      std::vector<bool> in_set = out;
      for (auto it = fn.blocks[b].instrs.rbegin(); it != fn.blocks[b].instrs.rend(); ++it) {
        if (it->dst >= 0) in_set[static_cast<std::size_t>(it->dst)] = false;
        auto mark = [&](int reg) {
          if (reg >= 0) in_set[static_cast<std::size_t>(reg)] = true;
        };
        mark(it->a);
        mark(it->b);
        for (int arg : it->args)
          if (!is_array_arg(arg)) mark(arg);
      }
      if (in_set != lv.in[b] || out != lv.out[b]) {
        lv.in[b] = std::move(in_set);
        lv.out[b] = std::move(out);
        fixed = false;
      }
    }
  }
  return lv;
}

}  // namespace

bool fold_constants(IrFunction& fn) {
  bool changed = false;
  for (BasicBlock& blk : fn.blocks) {
    std::map<int, ConstVal> known;  // reg -> constant value (local)
    for (Instr& in : blk.instrs) {
      // Try folding first.
      if (in.op == Op::ConstI) {
        known[in.dst] = ConstVal{IrType::I64, in.imm_i, 0};
        continue;
      }
      if (in.op == Op::ConstF) {
        known[in.dst] = ConstVal{IrType::F64, 0, in.imm_f};
        continue;
      }
      const auto ka = known.find(in.a);
      const auto kb = known.find(in.b);
      const bool a_const = in.a >= 0 && ka != known.end();
      const bool b_const = in.b >= 0 && kb != known.end();

      std::optional<ConstVal> folded;
      if (is_pure(in.op) && in.dst >= 0) {
        if (in.b < 0 && a_const) {
          folded = eval_unary(in, ka->second);
        } else if (a_const && b_const) {
          folded = eval_binary(in, ka->second, kb->second);
        }
      }
      // Trapping integer division folds only with a known non-zero divisor.
      if (!folded && (in.op == Op::DivI || in.op == Op::ModI) && a_const && b_const &&
          kb->second.i != 0) {
        ConstVal r;
        r.type = IrType::I64;
        r.i = in.op == Op::DivI ? ka->second.i / kb->second.i : ka->second.i % kb->second.i;
        folded = r;
      }

      if (folded) {
        const int dst = in.dst;
        in = Instr{};
        in.dst = dst;
        if (folded->type == IrType::F64) {
          in.op = Op::ConstF;
          in.imm_f = folded->f;
          in.type = IrType::F64;
        } else {
          in.op = Op::ConstI;
          in.imm_i = folded->i;
          in.type = IrType::I64;
        }
        known[dst] = *folded;
        changed = true;
        continue;
      }

      // Exact algebraic identities.
      auto to_mov = [&](int src) {
        const int dst = in.dst;
        const IrType t = in.type;
        in = Instr{};
        in.op = Op::Mov;
        in.dst = dst;
        in.a = src;
        in.type = t;
        changed = true;
      };
      const bool a_zero_i = a_const && ka->second.type == IrType::I64 && ka->second.i == 0;
      const bool b_zero_i = b_const && kb->second.type == IrType::I64 && kb->second.i == 0;
      const bool a_one_i = a_const && ka->second.type == IrType::I64 && ka->second.i == 1;
      const bool b_one_i = b_const && kb->second.type == IrType::I64 && kb->second.i == 1;
      const bool b_zero_f = b_const && kb->second.type == IrType::F64 && kb->second.f == 0.0;
      const bool a_zero_f = a_const && ka->second.type == IrType::F64 && ka->second.f == 0.0;
      const bool b_one_f = b_const && kb->second.type == IrType::F64 && kb->second.f == 1.0;
      const bool a_one_f = a_const && ka->second.type == IrType::F64 && ka->second.f == 1.0;
      const bool a_two_i = a_const && ka->second.type == IrType::I64 && ka->second.i == 2;
      const bool b_two_i = b_const && kb->second.type == IrType::I64 && kb->second.i == 2;

      switch (in.op) {
        case Op::AddI:
          if (b_zero_i) { to_mov(in.a); break; }
          if (a_zero_i) { to_mov(in.b); break; }
          break;
        case Op::SubI:
          if (b_zero_i) to_mov(in.a);
          break;
        case Op::MulI:
          if (b_one_i) { to_mov(in.a); break; }
          if (a_one_i) { to_mov(in.b); break; }
          if (a_zero_i || b_zero_i) {
            const int dst = in.dst;
            in = Instr{};
            in.op = Op::ConstI;
            in.dst = dst;
            in.imm_i = 0;
            in.type = IrType::I64;
            known[dst] = ConstVal{IrType::I64, 0, 0};
            changed = true;
            break;
          }
          // Strength reduction: x*2 -> x+x (exact for ints).
          if (b_two_i) {
            in.op = Op::AddI;
            in.b = in.a;
            changed = true;
            break;
          }
          if (a_two_i) {
            in.op = Op::AddI;
            in.a = in.b;
            changed = true;
            break;
          }
          break;
        case Op::DivI:
          if (b_one_i) to_mov(in.a);
          break;
        case Op::AddF:
          // x + 0.0 == x except for x == -0.0, whose sum is +0.0; both
          // compare equal and behave identically in MiniC (no copysign).
          if (b_zero_f) { to_mov(in.a); break; }
          if (a_zero_f) { to_mov(in.b); break; }
          break;
        case Op::SubF:
          if (b_zero_f) to_mov(in.a);
          break;
        case Op::MulF:
          if (b_one_f) { to_mov(in.a); break; }
          if (a_one_f) { to_mov(in.b); break; }
          // x*2.0 -> x+x is exact in binary floating point.
          if (b_const && kb->second.type == IrType::F64 && kb->second.f == 2.0) {
            in.op = Op::AddF;
            in.b = in.a;
            changed = true;
          }
          break;
        case Op::DivF:
          if (b_one_f) to_mov(in.a);
          break;
        default:
          break;
      }

      // Whatever the instruction became, its destination is no longer a
      // known constant (unless handled above).
      if (in.dst >= 0 && in.op != Op::ConstI && in.op != Op::ConstF) known.erase(in.dst);
      // Calls invalidate nothing here: registers are private to the frame.
    }
  }
  return changed;
}

bool propagate_copies(IrFunction& fn) {
  bool changed = false;
  for (BasicBlock& blk : fn.blocks) {
    std::map<int, int> copy_of;  // dst -> src while valid
    for (Instr& in : blk.instrs) {
      // Rewrite uses through the copy map (follow chains).
      auto rewrite = [&](int reg) {
        int r = reg;
        auto it = copy_of.find(r);
        while (it != copy_of.end()) {
          r = it->second;
          it = copy_of.find(r);
        }
        return r;
      };
      if (in.a >= 0) {
        const int r = rewrite(in.a);
        if (r != in.a) {
          in.a = r;
          changed = true;
        }
      }
      if (in.b >= 0) {
        const int r = rewrite(in.b);
        if (r != in.b) {
          in.b = r;
          changed = true;
        }
      }
      for (int& arg : in.args) {
        if (arg >= 0) {
          const int r = rewrite(arg);
          if (r != arg) {
            arg = r;
            changed = true;
          }
        }
      }
      if (in.dst >= 0) {
        // A definition kills copies through dst in both directions.
        copy_of.erase(in.dst);
        for (auto it = copy_of.begin(); it != copy_of.end();)
          it = it->second == in.dst ? copy_of.erase(it) : std::next(it);
        if (in.op == Op::Mov && in.a != in.dst) copy_of[in.dst] = in.a;
      }
    }
  }
  return changed;
}

bool eliminate_dead_code(IrFunction& fn) {
  const auto nblocks = fn.blocks.size();
  bool changed = false;

  // Dead stores: scalar slots never loaded can drop their stores (but keep
  // stores of incoming parameters? No: if never loaded, they are dead too).
  std::vector<bool> slot_loaded(fn.var_slots.size(), false);
  for (const BasicBlock& blk : fn.blocks)
    for (const Instr& in : blk.instrs)
      if (in.op == Op::LoadVar) slot_loaded[static_cast<std::size_t>(in.slot)] = true;
  for (BasicBlock& blk : fn.blocks) {
    const auto before = blk.instrs.size();
    std::erase_if(blk.instrs, [&](const Instr& in) {
      return in.op == Op::StoreVar && !slot_loaded[static_cast<std::size_t>(in.slot)];
    });
    changed |= blk.instrs.size() != before;
  }

  // Backward liveness, then remove removable instructions with dead
  // destinations, scanning backward with a running live set.
  const Liveness lv = compute_liveness(fn);
  const auto nregs = static_cast<std::size_t>(fn.num_regs);
  for (std::size_t b = 0; b < nblocks; ++b) {
    std::vector<bool> live = lv.out[b];
    live.resize(nregs, false);
    std::vector<Instr> kept;
    for (auto it = fn.blocks[b].instrs.rbegin(); it != fn.blocks[b].instrs.rend(); ++it) {
      const bool removable = is_removable(*it) && it->dst >= 0 &&
                             !live[static_cast<std::size_t>(it->dst)];
      if (removable) {
        changed = true;
        continue;
      }
      if (it->dst >= 0) live[static_cast<std::size_t>(it->dst)] = false;
      auto mark = [&](int reg) {
        if (reg >= 0) live[static_cast<std::size_t>(reg)] = true;
      };
      mark(it->a);
      mark(it->b);
      for (int arg : it->args)
        if (!is_array_arg(arg)) mark(arg);
      kept.push_back(std::move(*it));
    }
    std::reverse(kept.begin(), kept.end());
    fn.blocks[b].instrs = std::move(kept);
  }
  return changed;
}

bool eliminate_common_subexpressions(IrFunction& fn) {
  bool changed = false;
  for (BasicBlock& blk : fn.blocks) {
    struct Key {
      Op op;
      int a, b, slot;
      long long imm_i;
      double imm_f;
      bool operator<(const Key& o) const {
        if (op != o.op) return op < o.op;
        if (a != o.a) return a < o.a;
        if (b != o.b) return b < o.b;
        if (slot != o.slot) return slot < o.slot;
        if (imm_i != o.imm_i) return imm_i < o.imm_i;
        return imm_f < o.imm_f;
      }
    };
    std::map<Key, int> available;  // expression -> defining register
    auto invalidate_reg = [&](int reg) {
      for (auto it = available.begin(); it != available.end();) {
        if (it->first.a == reg || it->first.b == reg || it->second == reg)
          it = available.erase(it);
        else
          ++it;
      }
    };
    auto invalidate_loads = [&](bool vars, int slot /*-1: all*/) {
      for (auto it = available.begin(); it != available.end();) {
        const bool is_load = vars ? it->first.op == Op::LoadVar : it->first.op == Op::LoadIdx;
        if (is_load && (slot < 0 || it->first.slot == slot))
          it = available.erase(it);
        else
          ++it;
      }
    };

    for (Instr& in : blk.instrs) {
      const bool cse_able = (is_pure(in.op) && in.op != Op::Mov) || in.op == Op::ConstI ||
                            in.op == Op::ConstF || in.op == Op::LoadVar ||
                            in.op == Op::LoadIdx;
      if (cse_able && in.dst >= 0) {
        Key key{in.op, in.a, in.b, in.slot, in.imm_i, in.imm_f};
        auto it = available.find(key);
        if (it != available.end()) {
          const int dst = in.dst;
          const IrType t = in.type;
          const int src = it->second;
          in = Instr{};
          in.op = Op::Mov;
          in.dst = dst;
          in.a = src;
          in.type = t;
          changed = true;
          invalidate_reg(dst);
          continue;
        }
        invalidate_reg(in.dst);
        available[key] = in.dst;
        continue;
      }
      if (in.dst >= 0) invalidate_reg(in.dst);
      if (in.op == Op::StoreVar) invalidate_loads(true, in.slot);
      if (in.op == Op::StoreIdx) invalidate_loads(false, in.slot);
      if (in.op == Op::Call) {
        // Calls may write arrays passed by reference anywhere up the chain;
        // be conservative about all array loads. Scalar slots are private.
        invalidate_loads(false, -1);
      }
    }
  }
  return changed;
}

bool promote_variables(IrFunction& fn) {
  if (fn.var_slots.empty()) return false;
  // One dedicated register per scalar slot.
  std::vector<int> home(fn.var_slots.size());
  for (std::size_t s = 0; s < fn.var_slots.size(); ++s) home[s] = fn.new_reg();
  bool changed = false;
  for (BasicBlock& blk : fn.blocks) {
    for (Instr& in : blk.instrs) {
      if (in.op == Op::LoadVar) {
        const int dst = in.dst;
        const IrType t = in.type;
        const int src = home[static_cast<std::size_t>(in.slot)];
        in = Instr{};
        in.op = Op::Mov;
        in.dst = dst;
        in.a = src;
        in.type = t;
        changed = true;
      } else if (in.op == Op::StoreVar) {
        const int src = in.a;
        const IrType t = in.type;
        const int dst = home[static_cast<std::size_t>(in.slot)];
        in = Instr{};
        in.op = Op::Mov;
        in.dst = dst;
        in.a = src;
        in.type = t;
        changed = true;
      }
    }
  }
  return changed;
}

bool hoist_loop_invariants(IrFunction& fn) {
  bool changed = false;
  Cfg cfg = analyze_cfg(fn);
  const auto loops = find_loops(fn, cfg);
  Liveness lv = compute_liveness(fn);
  for (const Loop& loop : loops) {
    // Definition counts per register inside this loop.
    std::map<int, int> defs_in_loop;
    for (int b : loop.blocks)
      for (const Instr& in : fn.blocks[static_cast<std::size_t>(b)].instrs)
        if (in.dst >= 0) ++defs_in_loop[in.dst];

    // A register may be hoisted only if its pre-loop value is unobservable:
    // not live into the header and not live out of any loop exit edge.
    auto hoist_safe_dst = [&](int dst) {
      const auto d = static_cast<std::size_t>(dst);
      if (d < lv.in[static_cast<std::size_t>(loop.header)].size() &&
          lv.in[static_cast<std::size_t>(loop.header)][d])
        return false;
      for (int b : loop.blocks)
        for (int s : fn.successors(b))
          if (!loop.has(s) && d < lv.in[static_cast<std::size_t>(s)].size() &&
              lv.in[static_cast<std::size_t>(s)][d])
            return false;
      return true;
    };

    // Collect hoistable instructions (in deterministic block order).
    std::vector<Instr> hoisted;
    auto loop_blocks_sorted = loop.blocks;
    std::sort(loop_blocks_sorted.begin(), loop_blocks_sorted.end());
    bool progress = true;
    std::set<int> hoisted_dsts;
    while (progress) {
      progress = false;
      for (int b : loop_blocks_sorted) {
        auto& instrs = fn.blocks[static_cast<std::size_t>(b)].instrs;
        for (auto it = instrs.begin(); it != instrs.end();) {
          const Instr& in = *it;
          const bool candidate =
              (is_pure(in.op) || in.op == Op::ConstI || in.op == Op::ConstF) &&
              in.dst >= 0 && in.op != Op::Mov && defs_in_loop[in.dst] == 1 &&
              hoist_safe_dst(in.dst);
          bool operands_invariant = candidate;
          if (candidate) {
            for (int reg : {in.a, in.b}) {
              if (reg >= 0 &&
                  (defs_in_loop.count(reg) && defs_in_loop[reg] > 0) &&
                  !hoisted_dsts.count(reg))
                operands_invariant = false;
            }
          }
          if (candidate && operands_invariant) {
            hoisted.push_back(in);
            hoisted_dsts.insert(in.dst);
            defs_in_loop[in.dst] = 0;
            it = instrs.erase(it);
            progress = true;
            changed = true;
          } else {
            ++it;
          }
        }
      }
    }
    if (hoisted.empty()) continue;

    // Create the preheader: a new block jumping to the header; redirect
    // every non-back-edge predecessor of the header to it.
    const int pre = static_cast<int>(fn.blocks.size());
    BasicBlock pb;
    pb.id = pre;
    pb.instrs = std::move(hoisted);
    Instr j;
    j.op = Op::Jump;
    j.t1 = loop.header;
    pb.instrs.push_back(std::move(j));
    for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
      if (loop.has(static_cast<int>(b))) continue;  // back edges stay
      Instr& term = fn.blocks[b].instrs.back();
      if (term.op == Op::Jump && term.t1 == loop.header) term.t1 = pre;
      if (term.op == Op::CJump) {
        if (term.t1 == loop.header) term.t1 = pre;
        if (term.t2 == loop.header) term.t2 = pre;
      }
    }
    fn.blocks.push_back(std::move(pb));
    // CFG changed: recompute analyses for the next loop.
    cfg = analyze_cfg(fn);
    lv = compute_liveness(fn);
  }
  return changed;
}

}  // namespace pdc::ir
