// Abstract syntax tree for MiniC. The tree is mutable on purpose: dPerf's
// instrumenter transforms it (inserting vPAPI block markers) before
// unparsing, exactly as the paper's ROSE-based translator rewrites the AST.
#pragma once

#include <memory>
#include <string>
#include <vector>

namespace pdc::minic {

enum class Type { Void, Int, Double, IntArray, DoubleArray };

inline bool is_array(Type t) { return t == Type::IntArray || t == Type::DoubleArray; }
inline Type element_type(Type t) { return t == Type::IntArray ? Type::Int : Type::Double; }
std::string type_name(Type t);

enum class BinOp { Add, Sub, Mul, Div, Mod, Lt, Le, Gt, Ge, Eq, Ne, And, Or };
enum class UnOp { Neg, Not };

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  enum class Kind { IntLit, FloatLit, Var, Binary, Unary, Call, Index };
  Kind kind;
  long long int_lit = 0;
  double float_lit = 0;
  std::string name;  // Var / Call / Index base
  BinOp bin{};
  UnOp un{};
  std::vector<ExprPtr> kids;  // Binary: [lhs, rhs]; Unary/Index: [operand]; Call: args
  Type type = Type::Void;     // filled by sema
  int line = 0;

  static ExprPtr make_int(long long v, int line = 0);
  static ExprPtr make_float(double v, int line = 0);
  static ExprPtr make_var(std::string name, int line = 0);
  static ExprPtr make_binary(BinOp op, ExprPtr lhs, ExprPtr rhs, int line = 0);
  static ExprPtr make_unary(UnOp op, ExprPtr operand, int line = 0);
  static ExprPtr make_call(std::string name, std::vector<ExprPtr> args, int line = 0);
  static ExprPtr make_index(std::string base, ExprPtr index, int line = 0);

  ExprPtr clone() const;
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct Stmt {
  enum class Kind { Decl, Assign, If, While, For, Return, ExprStmt, Block };
  Kind kind;
  int line = 0;

  // Decl: decl_type name [array_size] [= init]
  Type decl_type = Type::Void;
  std::string name;
  ExprPtr array_size;
  ExprPtr init;

  // Assign: lvalue = value   (lvalue is a Var or Index expr)
  ExprPtr lvalue;
  ExprPtr value;

  // If: cond, body (then), else_body; While: cond, body;
  // For: for_init / cond / for_step, body; Return: value (may be null);
  // ExprStmt: value; Block: body.
  ExprPtr cond;
  StmtPtr for_init;
  StmtPtr for_step;
  std::vector<StmtPtr> body;
  std::vector<StmtPtr> else_body;

  static StmtPtr make(Kind kind, int line = 0);
  StmtPtr clone() const;
};

struct Param {
  Type type = Type::Void;
  std::string name;
};

struct Function {
  Type ret = Type::Void;
  std::string name;
  std::vector<Param> params;
  std::vector<StmtPtr> body;
  int line = 0;

  Function clone() const;
};

struct Program {
  std::vector<Function> functions;

  Program clone() const;
  Function* find(const std::string& name);
  const Function* find(const std::string& name) const;
};

}  // namespace pdc::minic
