// A sorted-vector map: contiguous storage, binary-search lookup, ascending
// key iteration. Drop-in for the std::map subset the overlay uses, without
// a node allocation per entry — the per-peer structures (tracker zones,
// server zone statistics, neighbour liveness) hold hundreds of thousands
// of entries at scale, where pointer-chasing node maps dominate both the
// memory footprint and the cache miss rate.
#pragma once

#include <algorithm>
#include <cstddef>
#include <stdexcept>
#include <utility>
#include <vector>

namespace pdc::support {

template <class Key, class T>
class FlatMap {
 public:
  using value_type = std::pair<Key, T>;
  using iterator = typename std::vector<value_type>::iterator;
  using const_iterator = typename std::vector<value_type>::const_iterator;

  iterator begin() { return items_.begin(); }
  iterator end() { return items_.end(); }
  const_iterator begin() const { return items_.begin(); }
  const_iterator end() const { return items_.end(); }

  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }
  void clear() { items_.clear(); }
  void reserve(std::size_t n) { items_.reserve(n); }

  iterator find(const Key& key) {
    auto it = lower(key);
    return it != items_.end() && it->first == key ? it : items_.end();
  }
  const_iterator find(const Key& key) const {
    auto it = lower(key);
    return it != items_.end() && it->first == key ? it : items_.end();
  }
  std::size_t count(const Key& key) const { return find(key) == end() ? 0 : 1; }

  T& at(const Key& key) {
    auto it = find(key);
    if (it == end()) throw std::out_of_range("FlatMap::at");
    return it->second;
  }
  const T& at(const Key& key) const {
    auto it = find(key);
    if (it == end()) throw std::out_of_range("FlatMap::at");
    return it->second;
  }

  T& operator[](const Key& key) { return try_emplace(key).first->second; }

  /// Inserts {key, T(args...)} unless the key exists; like std::map.
  template <class... Args>
  std::pair<iterator, bool> try_emplace(const Key& key, Args&&... args) {
    auto it = lower(key);
    if (it != items_.end() && it->first == key) return {it, false};
    it = items_.emplace(it, std::piecewise_construct, std::forward_as_tuple(key),
                        std::forward_as_tuple(std::forward<Args>(args)...));
    return {it, true};
  }

  std::size_t erase(const Key& key) {
    auto it = find(key);
    if (it == end()) return 0;
    items_.erase(it);
    return 1;
  }

  /// Removes every entry the predicate accepts; returns how many.
  template <class Pred>
  std::size_t erase_if(Pred pred) {
    const auto keep = std::remove_if(items_.begin(), items_.end(), pred);
    const auto n = static_cast<std::size_t>(items_.end() - keep);
    items_.erase(keep, items_.end());
    return n;
  }

 private:
  iterator lower(const Key& key) {
    return std::lower_bound(items_.begin(), items_.end(), key,
                            [](const value_type& v, const Key& k) { return v.first < k; });
  }
  const_iterator lower(const Key& key) const {
    return std::lower_bound(items_.begin(), items_.end(), key,
                            [](const value_type& v, const Key& k) { return v.first < k; });
  }

  std::vector<value_type> items_;
};

}  // namespace pdc::support
