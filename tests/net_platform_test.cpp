#include "net/platform.hpp"

#include <gtest/gtest.h>

#include "net/builders.hpp"
#include "support/rng.hpp"
#include "support/time.hpp"

namespace pdc::net {
namespace {

using namespace pdc::units;

TEST(Platform, BfsFindsShortestPath) {
  // a - r1 - r2 - b, plus a slow shortcut a - r2 (fewer hops wins).
  Platform p;
  const auto a = p.add_host("a", 1e9, Ipv4{10, 0, 0, 1});
  const auto b = p.add_host("b", 1e9, Ipv4{10, 0, 0, 2});
  const auto r1 = p.add_router("r1");
  const auto r2 = p.add_router("r2");
  const auto l1 = p.add_link("l1", 1 * Gbps, 1 * ms);
  const auto l2 = p.add_link("l2", 1 * Gbps, 1 * ms);
  const auto l3 = p.add_link("l3", 1 * Gbps, 1 * ms);
  const auto shortcut = p.add_link("shortcut", 1 * Kbps, 1 * ms);
  p.connect(a, r1, l1);
  p.connect(r1, r2, l2);
  p.connect(r2, b, l3);
  p.connect(a, r2, shortcut);
  const Route& r = p.route(a, b);
  ASSERT_EQ(r.hops.size(), 2u);  // shortcut + l3 is the 2-hop path
  EXPECT_EQ(r.hops[0].link, shortcut);
  EXPECT_EQ(r.hops[1].link, l3);
  EXPECT_DOUBLE_EQ(r.latency, 2 * ms);
}

TEST(Platform, RouteThrowsWhenDisconnected) {
  Platform p;
  const auto a = p.add_host("a", 1e9, Ipv4{10, 0, 0, 1});
  const auto b = p.add_host("b", 1e9, Ipv4{10, 0, 0, 2});
  EXPECT_THROW(p.route(a, b), std::runtime_error);
}

TEST(Platform, ExplicitRouteOverridesBfs) {
  Platform p;
  const auto a = p.add_host("a", 1e9, Ipv4{10, 0, 0, 1});
  const auto b = p.add_host("b", 1e9, Ipv4{10, 0, 0, 2});
  const auto direct = p.add_link("direct", 1 * Gbps, 1 * ms);
  const auto scenic = p.add_link("scenic", 1 * Gbps, 9 * ms);
  p.connect(a, b, direct);
  p.connect(a, b, scenic);
  p.set_route(a, b, {Hop{scenic, 0}});
  EXPECT_EQ(p.route(a, b).hops[0].link, scenic);
  // Symmetric reverse route installed with flipped direction.
  const Route& back = p.route(b, a);
  ASSERT_EQ(back.hops.size(), 1u);
  EXPECT_EQ(back.hops[0].link, scenic);
  EXPECT_EQ(back.hops[0].dir, 1);
}

TEST(Platform, ReverseRouteUsesOppositeDirections) {
  Platform p;
  const auto a = p.add_host("a", 1e9, Ipv4{10, 0, 0, 1});
  const auto b = p.add_host("b", 1e9, Ipv4{10, 0, 0, 2});
  const auto r = p.add_router("r");
  const auto l1 = p.add_link("l1", 1 * Gbps, 1 * ms);
  const auto l2 = p.add_link("l2", 1 * Gbps, 1 * ms);
  p.connect(a, r, l1);
  p.connect(r, b, l2);
  const Route& fwd = p.route(a, b);
  const Route& rev = p.route(b, a);
  ASSERT_EQ(fwd.hops.size(), 2u);
  ASSERT_EQ(rev.hops.size(), 2u);
  EXPECT_EQ(fwd.hops[0].link, rev.hops[1].link);
  EXPECT_NE(fwd.hops[0].dir, rev.hops[1].dir);
}

TEST(Platform, FindByNameAndIp) {
  Platform p;
  p.add_host("alpha", 1e9, Ipv4{10, 1, 0, 1});
  p.add_router("r");
  p.add_host("beta", 1e9, Ipv4{10, 1, 0, 2});
  EXPECT_EQ(p.find_by_name("beta"), p.host(1));
  EXPECT_EQ(p.find_by_ip(Ipv4{10, 1, 0, 1}), p.host(0));
  EXPECT_FALSE(p.find_by_name("gamma").has_value());
  EXPECT_FALSE(p.find_by_ip(Ipv4{9, 9, 9, 9}).has_value());
}

TEST(Builders, ClusterMatchesPaperStage1Parameters) {
  const Platform p = build_star(bordeplage_cluster_spec(8));
  EXPECT_EQ(p.host_count(), 8);
  // Every host pair routes NIC -> backbone -> NIC.
  const Route& r = p.route(p.host(0), p.host(5));
  ASSERT_EQ(r.hops.size(), 3u);
  EXPECT_DOUBLE_EQ(p.link(r.hops[0].link).bandwidth_Bps, 1 * Gbps);
  EXPECT_DOUBLE_EQ(p.link(r.hops[1].link).bandwidth_Bps, 10 * Gbps);
  EXPECT_DOUBLE_EQ(p.link(r.hops[2].link).bandwidth_Bps, 1 * Gbps);
  EXPECT_DOUBLE_EQ(r.latency, 300 * us);  // 3 hops x 100 us
  // Node speed: Xeon 3 GHz.
  EXPECT_DOUBLE_EQ(p.node(p.host(0)).speed_hz, 3e9);
}

TEST(Builders, LanMatchesPaperStage2BParameters) {
  const Platform p = build_star(lan_spec(4));
  const Route& r = p.route(p.host(1), p.host(2));
  ASSERT_EQ(r.hops.size(), 3u);
  EXPECT_DOUBLE_EQ(p.link(r.hops[0].link).bandwidth_Bps, 100 * Mbps);
  EXPECT_DOUBLE_EQ(p.link(r.hops[1].link).bandwidth_Bps, 1 * Gbps);
}

TEST(Builders, DaisyHasPaperNodeCountAndStructure) {
  DaisySpec spec;
  Rng rng{42};
  const Platform p = build_daisy(spec, rng);
  EXPECT_EQ(daisy_host_count(spec), 1024);
  EXPECT_EQ(p.host_count(), 1024);
  // Last-mile bandwidths within [5,10] Mbps.
  for (int i = 0; i < p.host_count(); i += 37) {
    const Route& r = p.route(p.host(i), p.host((i + 511) % 1024));
    ASSERT_GE(r.hops.size(), 2u);
    const double first_bw = p.link(r.hops.front().link).bandwidth_Bps;
    EXPECT_GE(first_bw, 5 * Mbps - 1);
    EXPECT_LE(first_bw, 10 * Mbps + 1);
  }
}

TEST(Builders, DaisyIpProximityCorrelatesWithTopology) {
  DaisySpec spec;
  Rng rng{42};
  const Platform p = build_daisy(spec, rng);
  // Two nodes on the same DSLAM share a longer prefix than nodes on
  // different petals, and their route is shorter.
  const Ipv4 same_dslam_a = p.node(p.host(30)).ip;  // extra-DSLAM area
  Ipv4 same_dslam_b;
  Ipv4 other_petal;
  int idx_same = -1, idx_other = -1;
  for (int i = 0; i < p.host_count(); ++i) {
    const Ipv4 ip = p.node(p.host(i)).ip;
    if (i != 30 && (ip.bits() >> 8) == (same_dslam_a.bits() >> 8) && idx_same < 0) {
      same_dslam_b = ip;
      idx_same = i;
    }
    if (((ip.bits() >> 16) & 0xFF) != ((same_dslam_a.bits() >> 16) & 0xFF) && idx_other < 0) {
      other_petal = ip;
      idx_other = i;
    }
  }
  ASSERT_GE(idx_same, 0);
  ASSERT_GE(idx_other, 0);
  EXPECT_GT(common_prefix_len(same_dslam_a, same_dslam_b),
            common_prefix_len(same_dslam_a, other_petal));
  EXPECT_LT(p.route(p.host(30), p.host(idx_same)).hops.size(),
            p.route(p.host(30), p.host(idx_other)).hops.size());
}

TEST(Builders, DaisyDeterministicForFixedSeed) {
  DaisySpec spec;
  Rng r1{7}, r2{7};
  const Platform p1 = build_daisy(spec, r1);
  const Platform p2 = build_daisy(spec, r2);
  ASSERT_EQ(p1.link_count(), p2.link_count());
  for (int l = 0; l < p1.link_count(); l += 101)
    EXPECT_DOUBLE_EQ(p1.link(l).bandwidth_Bps, p2.link(l).bandwidth_Bps);
}

}  // namespace
}  // namespace pdc::net
