// Builtin functions of MiniC: math, the P2PSAP communication intrinsics the
// paper's dPerf recognizes during static analysis, workload parameters and
// the vPAPI instrumentation markers.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "minic/ast.hpp"

namespace pdc::minic {

struct BuiltinSig {
  std::string name;
  Type ret = Type::Void;
  std::vector<Type> params;
  bool is_comm = false;  // dPerf treats these as communication calls
};

/// All builtins:
///   sqrt, fabs, fmax, fmin, floor           : double math
///   p2p_rank(), p2p_nprocs()                : topology queries
///   p2p_send(peer, tag, arr, off, n)        : P2PSAP send (comm)
///   p2p_recv(peer, tag, arr, off, n)        : P2PSAP receive (comm)
///   p2p_allreduce_max(x)                    : hierarchical reduction (comm)
///   p2p_param(i)                            : workload parameter (int)
///   p2p_param_f(i)                          : workload parameter (double)
///   dperf_block_begin(id), dperf_block_end(id) : vPAPI timers
///   dperf_iter_mark(id)                     : outer-iteration marker
const std::vector<BuiltinSig>& builtins();

/// Lookup by name; nullopt when not a builtin.
std::optional<BuiltinSig> find_builtin(const std::string& name);

/// True when a call by this name is a communication intrinsic.
bool is_comm_builtin(const std::string& name);

}  // namespace pdc::minic
