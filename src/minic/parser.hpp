// Recursive-descent parser for MiniC.
//
// Grammar (EBNF):
//   program   := { function }
//   function  := type ident '(' [ param {',' param} ] ')' block
//   param     := type ident [ '[' ']' ]
//   block     := '{' { stmt } '}'
//   stmt      := decl | assign | if | while | for | return | exprstmt | block
//   decl      := type ident [ '[' expr ']' ] [ '=' expr ] ';'
//   assign    := lvalue '=' expr ';'
//   lvalue    := ident | ident '[' expr ']'
//   if        := 'if' '(' expr ')' stmt [ 'else' stmt ]
//   while     := 'while' '(' expr ')' stmt
//   for       := 'for' '(' (decl|assign|';') expr ';' assign-no-semi ')' stmt
//   return    := 'return' [ expr ] ';'
//   expr      := precedence climbing over || && == != < <= > >= + - * / % ! unary-
#pragma once

#include "minic/ast.hpp"
#include "minic/token.hpp"

namespace pdc::minic {

/// Parses a full program. Throws CompileError on syntax errors.
Program parse(const std::string& source);

}  // namespace pdc::minic
