// EventFn: the engine's move-only callable, built so the hot scheduling
// paths never touch the general-purpose heap.
//
// Storage policy:
//  * captures up to kInlineSize bytes (sized for the largest real capture
//    set in src/ — an overlay CtrlMsg move-capture at 56 bytes) live inline
//    in the EventFn itself;
//  * larger captures fall back to a pooled slab: fixed-size blocks recycled
//    through a thread-local free list, so even the oversized path allocates
//    only until the pool warms up (one engine is only ever driven from one
//    thread, and campaign workers each warm their own pool);
//  * captures beyond the slab block size take an exact-size allocation —
//    the escape hatch, counted as a heap closure like the slab path.
//
// Dispatch is a single indirect call through a per-type vtable; moving an
// EventFn relocates the inline capture (move-construct + destroy, which
// optimizes to a memcpy for the trivially movable captures the simulator
// schedules) or just steals the slab pointer.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace pdc::sim {

namespace detail {

/// Thread-local recycler for oversized-closure blocks. Blocks are uniform
/// (kBlockSize) so any freed block satisfies any later oversized capture
/// that fits; larger captures bypass the pool entirely.
class ClosureSlabPool {
 public:
  static constexpr std::size_t kBlockSize = 192;

  static ClosureSlabPool& instance() {
    thread_local ClosureSlabPool pool;
    return pool;
  }

  void* alloc() {
    if (!free_.empty()) {
      void* p = free_.back();
      free_.pop_back();
      return p;
    }
    return ::operator new(kBlockSize, std::align_val_t{alignof(std::max_align_t)});
  }

  void release(void* p) { free_.push_back(p); }

  ~ClosureSlabPool() {
    for (void* p : free_)
      ::operator delete(p, std::align_val_t{alignof(std::max_align_t)});
  }

 private:
  std::vector<void*> free_;
};

}  // namespace detail

class EventFn {
 public:
  /// Inline capture budget: one cache line minus the vtable pointer.
  static constexpr std::size_t kInlineSize = 56;

  EventFn() = default;

  template <class F, class D = std::decay_t<F>,
            class = std::enable_if_t<!std::is_same_v<D, EventFn> &&
                                     std::is_invocable_r_v<void, D&>>>
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for std::function
    emplace(std::forward<F>(f));
  }

  /// Destroys the current callable (if any) and constructs `f` directly in
  /// this EventFn's storage — the engine's pooled entries use this to skip
  /// the extra relocation a construct-then-move-assign would cost.
  template <class F, class D = std::decay_t<F>,
            class = std::enable_if_t<!std::is_same_v<D, EventFn> &&
                                     std::is_invocable_r_v<void, D&>>>
  void emplace(F&& f) {
    static_assert(std::is_nothrow_move_constructible_v<D>,
                  "event closures must be nothrow-movable (the heap relocates them)");
    reset();
    if constexpr (sizeof(D) <= kInlineSize && alignof(D) <= alignof(std::max_align_t) &&
                  std::is_trivially_copyable_v<D> && std::is_trivially_destructible_v<D>) {
      // The common engine capture ([this], [this, id], a small struct by
      // value): relocation is a raw memcpy and destruction is skipped
      // entirely — no indirect calls outside invoke itself.
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      vt_ = &trivial_vtable<D>;
    } else if constexpr (sizeof(D) <= kInlineSize &&
                         alignof(D) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      vt_ = &inline_vtable<D>;
    } else if constexpr (sizeof(D) <= detail::ClosureSlabPool::kBlockSize &&
                         alignof(D) <= alignof(std::max_align_t)) {
      void* block = detail::ClosureSlabPool::instance().alloc();
      ::new (block) D(std::forward<F>(f));
      ptr() = block;
      vt_ = &slab_vtable<D>;
    } else {
      ptr() = new D(std::forward<F>(f));
      vt_ = &exact_vtable<D>;
    }
  }

  EventFn(EventFn&& other) noexcept { steal(other); }

  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      steal(other);
    }
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() { reset(); }

  explicit operator bool() const { return vt_ != nullptr; }

  /// True when the capture lives outside the EventFn (slab or exact-size
  /// block) — the counter behind EngineStats' inline-vs-heap split.
  bool on_heap() const { return vt_ != nullptr && vt_->heap; }

  void operator()() { vt_->invoke(storage()); }

  void reset() {
    if (vt_) {
      if (vt_->destroy) vt_->destroy(storage());
      vt_ = nullptr;
    }
  }

 private:
  struct VTable {
    void (*invoke)(void*);
    void (*relocate)(void* dst, void* src);  // null: memcpy the inline buffer
    void (*destroy)(void*);                  // null: trivially destructible
    bool heap;
  };

  void* storage() { return buf_; }
  void*& ptr() { return *reinterpret_cast<void**>(static_cast<void*>(buf_)); }

  void steal(EventFn& other) {
    vt_ = other.vt_;
    if (vt_) {
      if (vt_->relocate)
        vt_->relocate(buf_, other.buf_);
      else
        __builtin_memcpy(buf_, other.buf_, kInlineSize);
      other.vt_ = nullptr;
    }
  }

  template <class D>
  static void invoke_inline(void* p) {
    (*std::launder(reinterpret_cast<D*>(p)))();
  }
  template <class D>
  static void relocate_inline(void* dst, void* src) {
    D* s = std::launder(reinterpret_cast<D*>(src));
    ::new (dst) D(std::move(*s));
    s->~D();
  }
  template <class D>
  static void destroy_inline(void* p) {
    std::launder(reinterpret_cast<D*>(p))->~D();
  }

  template <class D>
  static D* pointee(void* p) {
    return static_cast<D*>(*reinterpret_cast<void**>(p));
  }
  template <class D>
  static void invoke_ptr(void* p) {
    (*pointee<D>(p))();
  }
  static void relocate_ptr(void* dst, void* src) {
    *reinterpret_cast<void**>(dst) = *reinterpret_cast<void**>(src);
  }
  template <class D>
  static void destroy_slab(void* p) {
    D* obj = pointee<D>(p);
    obj->~D();
    detail::ClosureSlabPool::instance().release(obj);
  }
  template <class D>
  static void destroy_exact(void* p) {
    delete pointee<D>(p);
  }

  template <class D>
  static constexpr VTable trivial_vtable{&invoke_inline<D>, nullptr, nullptr, false};
  template <class D>
  static constexpr VTable inline_vtable{&invoke_inline<D>, &relocate_inline<D>,
                                        &destroy_inline<D>, false};
  template <class D>
  static constexpr VTable slab_vtable{&invoke_ptr<D>, &relocate_ptr, &destroy_slab<D>,
                                      true};
  template <class D>
  static constexpr VTable exact_vtable{&invoke_ptr<D>, &relocate_ptr, &destroy_exact<D>,
                                       true};

  // Buffer first: with the 16-byte alignment on buf_, putting vt_ ahead of
  // it would pad the struct to 80 bytes; this order keeps sizeof(EventFn)
  // at exactly one cache line.
  alignas(std::max_align_t) unsigned char buf_[kInlineSize];
  const VTable* vt_ = nullptr;
};

static_assert(sizeof(EventFn) == 64, "EventFn must stay one cache line");

}  // namespace pdc::sim
