// Stress and edge-case coverage of the coroutine kernel: deep task chains,
// fan-out/fan-in at scale, timer storms with cancellations, determinism of
// full runs.
#include <gtest/gtest.h>

#include "sim/engine.hpp"
#include "sim/mailbox.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"
#include "support/rng.hpp"

namespace pdc::sim {
namespace {

Task<int> chain(Engine& eng, int depth) {
  if (depth == 0) co_return 0;
  co_await eng.sleep(0.001);
  const int below = co_await chain(eng, depth - 1);
  co_return below + 1;
}

TEST(SimStress, DeepTaskChains) {
  Engine eng;
  int result = 0;
  eng.spawn([](Engine& e, int& out) -> Process { out = co_await chain(e, 150); }(eng, result));
  eng.run();
  EXPECT_EQ(result, 150);
  EXPECT_NEAR(eng.now(), 0.150, 1e-9);
}

TEST(SimStress, ThousandProcessFanInViaLatch) {
  Engine eng;
  constexpr int kN = 1000;
  Latch latch{eng, kN};
  Time released = -1;
  eng.spawn([](Engine& e, Latch& l, Time& out) -> Process {
    co_await l.wait();
    out = e.now();
  }(eng, latch, released));
  Rng rng{77};
  Time latest = 0;
  for (int i = 0; i < kN; ++i) {
    const Time when = rng.uniform(0.0, 10.0);
    latest = std::max(latest, when);
    eng.schedule_at(when, [&latch] { latch.count_down(); });
  }
  eng.run();
  EXPECT_DOUBLE_EQ(released, latest);
}

TEST(SimStress, TimerStormWithRandomCancellations) {
  Engine eng;
  Rng rng{123};
  int fired = 0;
  std::vector<TimerHandle> handles;
  for (int i = 0; i < 2000; ++i)
    handles.push_back(eng.schedule_cancellable(rng.uniform(0, 5), [&fired] { ++fired; }));
  int cancelled = 0;
  for (std::size_t i = 0; i < handles.size(); i += 3) {
    handles[i].cancel();
    ++cancelled;
  }
  eng.run();
  EXPECT_EQ(fired, 2000 - cancelled);
}

TEST(SimStress, FullRunsAreDeterministic) {
  auto run_once = [] {
    Engine eng;
    Mailbox<int> mb{eng};
    Rng rng{9};
    std::vector<int> order;
    for (int p = 0; p < 8; ++p) {
      eng.spawn([](Engine& e, Mailbox<int>& m, Rng seed, int id) -> Process {
        Rng local = seed;
        for (int k = 0; k < 20; ++k) {
          co_await e.sleep(local.uniform(0.01, 0.5));
          m.push(id * 100 + k);
        }
      }(eng, mb, rng.split(), p));
    }
    eng.spawn([](Mailbox<int>& m, std::vector<int>& out) -> Process {
      for (int i = 0; i < 160; ++i) out.push_back(co_await m.recv());
    }(mb, order));
    eng.run();
    return order;
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a, b) << "identical seeds must give identical schedules";
}

TEST(SimStress, MailboxHandoffUnderManyWaitersAndBursts) {
  Engine eng;
  Mailbox<int> mb{eng};
  int received = 0;
  for (int w = 0; w < 50; ++w) {
    eng.spawn([](Mailbox<int>& m, int& n) -> Process {
      for (int k = 0; k < 4; ++k) {
        (void)co_await m.recv();
        ++n;
      }
    }(mb, received));
  }
  for (int burst = 0; burst < 10; ++burst) {
    eng.schedule_at(burst * 1.0, [&mb] {
      for (int i = 0; i < 20; ++i) mb.push(i);
    });
  }
  eng.run();
  EXPECT_EQ(received, 200);
  EXPECT_TRUE(mb.empty());
}

TEST(SimStress, RecvForTimeoutStormLeavesNoDanglingWaiters) {
  Engine eng;
  Mailbox<int> mb{eng};
  int timeouts = 0, values = 0;
  for (int i = 0; i < 100; ++i) {
    eng.spawn([](Engine& e, Mailbox<int>& m, int& to, int& vs, int id) -> Process {
      for (int round = 0; round < 5; ++round) {
        auto v = co_await m.recv_for(0.1 + (id % 7) * 0.01);
        if (v)
          ++vs;
        else
          ++to;
        co_await e.sleep(0.05);
      }
    }(eng, mb, timeouts, values, i));
  }
  // Sparse pushes: most waits time out.
  for (int k = 0; k < 40; ++k) eng.schedule_at(0.02 * k, [&mb, k] { mb.push(k); });
  eng.run();
  EXPECT_EQ(values + timeouts, 500);
  EXPECT_EQ(values, 40 - static_cast<int>(mb.size()));
}

TEST(SimStress, GateReleasesLateAndEarlyWaitersAlike) {
  Engine eng;
  Gate gate{eng};
  int released = 0;
  eng.spawn([](Gate& g, int& n) -> Process {  // early waiter
    co_await g.wait();
    ++n;
  }(gate, released));
  eng.schedule_at(1.0, [&gate] { gate.open(); });
  eng.schedule_at(2.0, [&] {
    eng.spawn([](Gate& g, int& n) -> Process {  // late waiter: already open
      co_await g.wait();
      ++n;
    }(gate, released));
  });
  eng.run();
  EXPECT_EQ(released, 2);
}

}  // namespace
}  // namespace pdc::sim
