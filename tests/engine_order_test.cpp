// Edge semantics of the event kernel: (time, insertion-order) FIFO across
// every event kind, scheduling during dispatch, run_until boundaries,
// timer-slot generation checks, deferred self-destroy, the EventFn storage
// tiers, and the allocation-free steady-state contract (checked with a
// counting global operator new).
#include <gtest/gtest.h>

#include <array>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/mailbox.hpp"
#include "sim/process.hpp"
#include "sim/sync.hpp"

namespace {
// Global allocation counter. Counts every path through the replaceable
// global operator new (ASan still intercepts the underlying malloc, so the
// sanitizer jobs exercise this too).
std::uint64_t g_allocs = 0;
}  // namespace

void* operator new(std::size_t n) {
  ++g_allocs;
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc{};
}
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  ++g_allocs;
  return std::malloc(n);
}
void* operator new(std::size_t n, std::align_val_t al) {
  ++g_allocs;
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(al),
                                   (n + static_cast<std::size_t>(al) - 1) &
                                       ~(static_cast<std::size_t>(al) - 1)))
    return p;
  throw std::bad_alloc{};
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace pdc::sim {
namespace {

TEST(EngineOrder, SameTimeFifoAcrossEventKinds) {
  Engine eng;
  std::vector<std::string> order;
  // Insertion order at t=1: the process's sleep-resume is scheduled *during*
  // the t=0 dispatch of its spawn event, so it lands after A/S/B.
  eng.spawn([](Engine& e, std::vector<std::string>& ord) -> Process {
    co_await e.sleep(1.0);
    ord.push_back("resume");
  }(eng, order));
  const int slot = eng.create_timer_slot([&order] { order.push_back("slot"); });
  eng.schedule_at(1.0, [&order] { order.push_back("A"); });
  eng.arm_timer_slot(slot, 1.0);
  eng.schedule_at(1.0, [&order] { order.push_back("B"); });
  eng.run();
  EXPECT_EQ(order, (std::vector<std::string>{"A", "slot", "B", "resume"}));
  eng.destroy_timer_slot(slot);
}

TEST(EngineOrder, EventsScheduledDuringDispatchAtCurrentTimeRunLast) {
  Engine eng;
  std::vector<int> order;
  eng.schedule_at(1.0, [&] {
    order.push_back(1);
    eng.post([&] { order.push_back(3); });  // same time, inserted mid-dispatch
    eng.schedule_at(0.5, [&] { order.push_back(4); });  // past: clamps to now
  });
  eng.schedule_at(1.0, [&] { order.push_back(2); });
  Time t_at_4 = -1;
  eng.schedule_at(1.0 + 1e-9, [&] { t_at_4 = eng.now(); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_DOUBLE_EQ(t_at_4, 1.0 + 1e-9);
}

TEST(EngineOrder, RunUntilLandingExactlyOnEventTime) {
  Engine eng;
  int fired = 0;
  eng.schedule_at(5.0, [&] { ++fired; });
  eng.schedule_at(5.0, [&] { ++fired; });
  eng.schedule_at(5.0 + 1e-12, [&] { ++fired; });
  eng.run_until(5.0);  // boundary inclusive: both t==5 events fire
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(eng.now(), 5.0);
  EXPECT_FALSE(eng.queue_empty());
  eng.run();
  EXPECT_EQ(fired, 3);
}

TEST(EngineOrder, SlotIdReuseWithStaleGenerations) {
  Engine eng;
  int old_fired = 0;
  int new_fired = 0;
  const int a = eng.create_timer_slot([&] { ++old_fired; });
  eng.arm_timer_slot(a, 1.0);
  eng.arm_timer_slot(a, 2.0);  // supersedes the first arm
  eng.destroy_timer_slot(a);   // both arms now stale
  const int b = eng.create_timer_slot([&] { ++new_fired; });
  ASSERT_EQ(b, a);  // the id was recycled
  eng.arm_timer_slot(b, 3.0);
  eng.run();
  // Neither stale arm may fire the recycled slot's callback.
  EXPECT_EQ(old_fired, 0);
  EXPECT_EQ(new_fired, 1);
  EXPECT_DOUBLE_EQ(eng.now(), 3.0);
}

TEST(EngineOrder, DestroyTimerSlotFromOwnCallbackIsDeferred) {
  // Regression for the engine.hpp footgun: destroying a slot from inside its
  // own callback used to be UB (the closure died mid-execution). It is now a
  // deferred destruction: the capture stays alive until the callback
  // returns, and the id recycles cleanly afterwards.
  Engine eng;
  // A capture with heap state, so ASan would catch any use-after-free of
  // the closure's storage while the tail of the callback still runs.
  auto payload = std::make_shared<std::vector<int>>(std::vector<int>{1, 2, 3});
  int observed_after_destroy = 0;
  int slot = -1;
  slot = eng.create_timer_slot([&eng, &slot, payload, &observed_after_destroy] {
    eng.destroy_timer_slot(slot);  // self-destroy, mid-callback
    // The capture must still be intact after the destroy call.
    observed_after_destroy = static_cast<int>(payload->size());
  });
  std::weak_ptr<std::vector<int>> alive = payload;
  payload.reset();
  eng.arm_timer_slot(slot, 1.0);
  eng.run();
  EXPECT_EQ(observed_after_destroy, 3);
  // The deferred destruction released the closure (and its capture).
  EXPECT_TRUE(alive.expired());
  // The id is recyclable and the stale-generation guard held.
  const int again = eng.create_timer_slot([] {});
  EXPECT_EQ(again, slot);
  eng.destroy_timer_slot(again);
}

TEST(EngineOrder, CancelHandleAfterSlotRecycledIsInert) {
  Engine eng;
  bool guard_fired = false;
  TimerHandle h = eng.schedule_cancellable(1.0, [&] { guard_fired = true; });
  eng.run();  // fires; the one-shot slot retires and its id recycles
  EXPECT_TRUE(guard_fired);
  EXPECT_FALSE(h.active());
  int new_fired = 0;
  TimerHandle h2 = eng.schedule_cancellable(1.0, [&] { ++new_fired; });
  h.cancel();  // stale generation: must not disturb the recycled slot's owner
  EXPECT_TRUE(h2.active());
  eng.run();
  EXPECT_EQ(new_fired, 1);
}

TEST(EngineOrder, OversizedClosuresTakeTheSlabPathAndStillRun) {
  Engine eng;
  std::array<char, 120> big{};  // > EventFn::kInlineSize, within the slab block
  big[0] = 7;
  std::array<char, 400> huge{};  // > slab block: exact-size escape hatch
  huge[0] = 9;
  int sum = 0;
  eng.schedule_at(1.0, [big, &sum] { sum += big[0]; });
  eng.schedule_at(2.0, [huge, &sum] { sum += huge[0]; });
  eng.schedule_at(3.0, [&sum] { sum += 1; });  // inline
  eng.run();
  EXPECT_EQ(sum, 17);
  EXPECT_EQ(eng.stats().closures_heap, 2u);
  EXPECT_EQ(eng.stats().closures_inline, 1u);
}

TEST(EngineOrder, CancelledLongTimeoutGuardsDoNotBloatTheQueue) {
  // 10k guard timers armed 1000s out and cancelled immediately: the dead
  // arms must be swept, not parked until their nominal fire time.
  Engine eng;
  eng.spawn([](Engine& e) -> Process {
    for (int i = 0; i < 10000; ++i) {
      TimerHandle h = e.schedule_cancellable(1000.0, [] {});
      h.cancel();
      co_await e.sleep(0.001);
    }
  }(eng));
  eng.run();
  EXPECT_LT(eng.stats().peak_queue_depth, 1000u);
  EXPECT_EQ(eng.stats().stale_slot_events, 10000u);
}

TEST(EngineOrder, SameTimeCancelledArmsStayCorrectAndBounded) {
  // Pathological sweep shape: hundreds of zero-delay arms cancelled while
  // their events sit in the *current* bucket, which the sweep cannot touch.
  // The sweep back-off must keep this linear (a hang here would time out),
  // and every dead arm must still be shed without firing.
  Engine eng;
  int fired = 0;
  eng.post([&] {
    for (int i = 0; i < 1000; ++i) {
      const int slot = eng.create_timer_slot([&fired] { ++fired; });
      eng.arm_timer_slot(slot, 0.0);  // lands in the bucket being drained
      eng.destroy_timer_slot(slot);
    }
  });
  eng.run();
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(eng.stats().stale_slot_events, 1000u);
  EXPECT_TRUE(eng.queue_empty());
}

Process ping(Engine& eng, Mailbox<int>& in, Mailbox<int>& out, int rounds, bool starter) {
  if (starter) out.push(0);
  for (int i = 0; i < rounds; ++i) {
    auto v = co_await in.recv_for(10.0);  // always satisfied by the push
    EXPECT_TRUE(v.has_value());  // ASSERT_* cannot `return` out of a coroutine
    if (!v) co_return;
    co_await eng.sleep(0.0005);
    out.push(*v + 1);
  }
}

TEST(EngineOrder, SteadyStatePathsAreAllocationFree) {
  // The acceptance contract made executable: once pools/buckets are warm, a
  // sleep + timed-receive + posted-callback workload performs zero heap
  // allocations per event. The same invariant is what EngineStats'
  // closures_heap == 0 reports from inside.
  Engine eng;
  Mailbox<int> a{eng}, b{eng};
  constexpr int kWarmRounds = 400;
  constexpr int kSteadyRounds = 4000;
  eng.spawn(ping(eng, a, b, kWarmRounds + kSteadyRounds, true));
  eng.spawn(ping(eng, b, a, kWarmRounds + kSteadyRounds, false));
  struct Chain {
    Engine* e;
    int remaining;
    void step() {
      if (remaining-- > 0)
        e->schedule_after(0.0013, [this] { step(); });
    }
  } chain{&eng, kWarmRounds + kSteadyRounds};
  chain.step();
  // Warm-up: pools, buckets, the time map and the coroutine frames all
  // reach steady capacity.
  eng.run_until(kWarmRounds * 0.001);
  const std::uint64_t warm_allocs = g_allocs;
  // Steady window: thousands of rounds, stopped shy of the processes'
  // completion (reaping a finished coroutine is a legitimate one-off).
  eng.run_until((kWarmRounds + kSteadyRounds) * 0.001 - 0.1);
  EXPECT_EQ(g_allocs, warm_allocs) << "steady-state event paths allocated";
  eng.run();
  EXPECT_EQ(eng.stats().closures_heap, 0u);
  EXPECT_GT(eng.stats().resumes, 2u * kSteadyRounds);
  EXPECT_GT(eng.stats().slot_arms, 2u * kSteadyRounds);
}

TEST(EngineOrder, StatsCountEachPath) {
  Engine eng;
  eng.schedule_at(1.0, [] {});
  eng.spawn([](Engine& e) -> Process { co_await e.sleep(1.0); }(eng));
  const int slot = eng.create_timer_slot([] {});
  eng.arm_timer_slot(slot, 2.0);
  eng.arm_timer_slot(slot, 1.0);  // supersedes: one stale event
  eng.run();
  const EngineStats& st = eng.stats();
  // closure + spawn resume + sleep resume + live arm + stale arm.
  EXPECT_EQ(st.events_dispatched, 5u);
  EXPECT_EQ(st.closures_inline, 2u);  // the lambda + the slot callback
  EXPECT_EQ(st.closures_heap, 0u);
  EXPECT_EQ(st.resumes, 2u);
  EXPECT_EQ(st.slot_arms, 2u);
  EXPECT_EQ(st.stale_slot_events, 1u);
  EXPECT_GE(st.peak_queue_depth, 3u);
  eng.destroy_timer_slot(slot);
}

}  // namespace
}  // namespace pdc::sim
