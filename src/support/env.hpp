// Process-environment configuration knobs, in one place instead of scattered
// std::getenv calls. Every knob the project reads is documented in
// ROADMAP.md ("Environment knobs").
#pragma once

#include <string>

namespace pdc {

/// True when `name` is set to anything but "" or a string starting with '0'
/// (so PDC_QUICK=1, PDC_QUICK=yes enable; PDC_QUICK=0 and unset disable).
bool env_flag(const char* name, bool fallback = false);

/// Integer value of `name`, or `fallback` when unset or not a number.
int env_int(const char* name, int fallback);

/// Double value of `name`, or `fallback` when unset or not a number.
double env_double(const char* name, double fallback);

/// String value of `name`, or `fallback` when unset or empty.
std::string env_str(const char* name, const std::string& fallback = {});

}  // namespace pdc
