// Gap-fill integration tests: flat-allocation results, WAN channel
// adaptation on the Daisy platform, dPerf pipeline on non-obstacle
// programs, and trace-file round trips through the full replay path.
#include <gtest/gtest.h>

#include "dperf/dperf.hpp"
#include "net/builders.hpp"
#include "obstacle/minic_kernel.hpp"
#include "p2pdc/environment.hpp"
#include "support/rng.hpp"

namespace pdc {
namespace {

TEST(IntegrationGaps, FlatAllocationDeliversAllResults) {
  sim::Engine eng;
  const net::Platform plat = net::build_star(net::bordeplage_cluster_spec(12));
  p2pdc::Environment env{eng, plat};
  env.boot_server(plat.host(0));
  env.boot_tracker(plat.host(1), true);
  for (int i = 2; i < 12; ++i)
    env.boot_peer(plat.host(i), overlay::PeerResources{3e9, 1e9, 1e9});
  env.finish_bootstrap();

  p2pdc::TaskSpec spec;
  spec.peers_needed = 8;
  spec.allocation = p2pdc::AllocationMode::Flat;
  spec.subtask_bytes = 4096;
  spec.result_bytes = 256;
  auto result = env.run_computation(plat.host(2), spec,
                                    [](p2pdc::PeerContext& ctx) -> sim::Task<void> {
                                      ctx.set_result({ctx.rank() + 0.5});
                                      co_return;
                                    });
  ASSERT_TRUE(result.ok) << result.failure;
  ASSERT_EQ(result.results.size(), 8u);
  for (int r = 0; r < 8; ++r) EXPECT_DOUBLE_EQ(result.results.at(r)[0], r + 0.5);
}

TEST(IntegrationGaps, DaisyPeersGetWanProfiles) {
  // Two xDSL peers on different petals communicate over the WAN profile;
  // same-DSLAM peers get the intra-zone profile.
  sim::Engine eng;
  net::DaisySpec spec;
  Rng rng{42};
  const net::Platform plat = net::build_daisy(spec, rng);
  net::FlowNet flownet{eng, plat};
  p2psap::Fabric fabric{eng, flownet, plat};
  auto& wan = fabric.channel(plat.host(0), plat.host(700), p2psap::Scheme::Synchronous);
  EXPECT_EQ(wan.config().profile, "SYNC/TCP-wan");
  auto& local = fabric.channel(plat.host(0), plat.host(3), p2psap::Scheme::Synchronous);
  EXPECT_EQ(local.config().profile, "SYNC/TCP-intrazone");
  auto& wan_async = fabric.channel(plat.host(0), plat.host(700), p2psap::Scheme::Asynchronous);
  EXPECT_EQ(wan_async.config().profile, "ASYNC/DCCP-wan");
}

TEST(IntegrationGaps, DperfHandlesProgramWithoutCommLoops) {
  // A pure-compute program: no iteration marks, trace = one compute event,
  // no scale-up path, replay still works.
  const char* src = R"(
int main() {
  int n = p2p_param(0);
  double s = 0.0;
  for (int i = 0; i < n; i = i + 1) { s = s + i * 0.5; }
  if (s < 0.0) { return 1; }
  return 0;
}
)";
  dperf::DperfOptions opt;
  opt.level = ir::OptLevel::O2;
  const dperf::Dperf pipeline{src, opt};
  EXPECT_EQ(pipeline.instrumented().iter_loops, 0);
  dperf::Workload w;
  w.int_params = {5000};
  const auto traces = pipeline.traces(w, 2);
  ASSERT_EQ(traces.size(), 2u);
  EXPECT_EQ(traces[0].count(dperf::TraceEvent::Kind::Send), 0u);
  EXPECT_GT(traces[0].total_compute_ns(), 0u);

  sim::Engine eng;
  const net::Platform plat = net::build_star(net::bordeplage_cluster_spec(5));
  p2pdc::Environment env{eng, plat};
  env.boot_server(plat.host(0));
  env.boot_tracker(plat.host(1), true);
  for (int i = 2; i < 5; ++i)
    env.boot_peer(plat.host(i), overlay::PeerResources{3e9, 1e9, 1e9});
  env.finish_bootstrap();
  const auto pred = dperf::replay_on(env, plat.host(2), p2pdc::TaskSpec{}, traces);
  ASSERT_TRUE(pred.computation.ok) << pred.computation.failure;
  EXPECT_GT(pred.solve_seconds, 0);
}

TEST(IntegrationGaps, TraceSurvivesSerializationThroughReplay) {
  // Save + load the kernel traces, replay the loaded copies: identical
  // prediction as replaying the originals.
  obstacle::ObstacleProblem p;
  p.n = 34;
  dperf::DperfOptions opt;
  opt.level = ir::OptLevel::O1;
  opt.chunk = 5;
  opt.sample_iters = 15;
  const dperf::Dperf pipeline{obstacle::minic_kernel_source(), opt};
  const auto traces = pipeline.traces(obstacle::kernel_workload(p, 60, 5), 3);

  std::vector<dperf::Trace> reloaded;
  for (const auto& t : traces) reloaded.push_back(dperf::load_trace(dperf::save_trace(t)));

  auto predict = [&](const std::vector<dperf::Trace>& ts) {
    sim::Engine eng;
    const net::Platform plat = net::build_star(net::bordeplage_cluster_spec(6));
    p2pdc::Environment env{eng, plat};
    env.boot_server(plat.host(0));
    env.boot_tracker(plat.host(1), true);
    for (int i = 2; i < 6; ++i)
      env.boot_peer(plat.host(i), overlay::PeerResources{3e9, 1e9, 1e9});
    env.finish_bootstrap();
    const auto pred = dperf::replay_on(env, plat.host(2), p2pdc::TaskSpec{}, ts);
    EXPECT_TRUE(pred.computation.ok) << pred.computation.failure;
    return pred.solve_seconds;
  };
  EXPECT_DOUBLE_EQ(predict(traces), predict(reloaded));
}

TEST(IntegrationGaps, ReplayOnFasterHostsScalesComputeDown) {
  // Traces measured at 3 GHz replayed on 6 GHz hosts: compute halves.
  const char* src = R"(
int main() {
  double s = 0.0;
  for (int i = 0; i < 200000; i = i + 1) { s = s + i * 0.5; }
  if (s < 0.0) { return 1; }
  return 0;
}
)";
  dperf::DperfOptions opt;
  const dperf::Dperf pipeline{src, opt};
  const auto traces = pipeline.traces(dperf::Workload{}, 1);

  auto predict_at = [&](double hz) {
    sim::Engine eng;
    net::StarSpec sp = net::bordeplage_cluster_spec(4);
    sp.host_speed_hz = hz;
    const net::Platform plat = net::build_star(sp);
    p2pdc::Environment env{eng, plat};
    env.boot_server(plat.host(0));
    env.boot_tracker(plat.host(1), true);
    env.boot_peer(plat.host(2), overlay::PeerResources{hz, 1e9, 1e9});
    env.boot_peer(plat.host(3), overlay::PeerResources{hz, 1e9, 1e9});
    env.finish_bootstrap();
    const auto pred = dperf::replay_on(env, plat.host(2), p2pdc::TaskSpec{}, traces);
    EXPECT_TRUE(pred.computation.ok) << pred.computation.failure;
    return pred.solve_seconds;
  };
  const double at3 = predict_at(3e9);
  const double at6 = predict_at(6e9);
  EXPECT_NEAR(at6 / at3, 0.5, 0.02);
}

}  // namespace
}  // namespace pdc
