// Direct unit test for the overlay's tracker-crash failover (paper §III-A.5
// and §III-A.7): kill a tracker mid-run and assert its zone peers re-join a
// neighbour zone — rejoin_count increments and their resources are
// republished to the surviving tracker. Previously this path was only
// reachable implicitly through churn scenarios.
#include "overlay/overlay.hpp"

#include <gtest/gtest.h>

#include "net/builders.hpp"
#include "net/flow.hpp"

namespace pdc::overlay {
namespace {

TEST(OverlayFailover, PeersRejoinNeighbourZoneAfterTrackerCrash) {
  sim::Engine engine;
  const net::Platform plat = net::build_star(net::lan_spec(16));
  net::FlowNet flownet{engine, plat};
  Overlay ov{engine, plat, flownet};

  // Server + two administrator core trackers; IPs are sequential on the
  // LAN, so hosts 2..6 gravitate to the tracker on host 1 and hosts 9..13
  // to the tracker on host 8.
  ov.create_server(plat.host(0));
  TrackerActor& t_low = ov.create_tracker(plat.host(1), /*core=*/true);
  TrackerActor& t_high = ov.create_tracker(plat.host(8), /*core=*/true);
  ov.finish_bootstrap();

  const double kCpu = 2.6e9;
  std::vector<PeerActor*> low_zone, high_zone;
  for (int i = 2; i <= 6; ++i)
    low_zone.push_back(&ov.create_peer(plat.host(i), PeerResources{kCpu, 1e9, 1e9}));
  for (int i = 9; i <= 13; ++i)
    high_zone.push_back(&ov.create_peer(plat.host(i), PeerResources{kCpu, 1e9, 1e9}));

  engine.run_until(8.0);
  ASSERT_TRUE(t_low.alive());
  ASSERT_EQ(t_low.zone().size(), low_zone.size());
  ASSERT_EQ(t_high.zone().size(), high_zone.size());
  for (PeerActor* p : low_zone) {
    ASSERT_TRUE(p->joined());
    ASSERT_EQ(p->tracker().node, t_low.host());
    ASSERT_EQ(p->rejoin_count(), 0);
  }

  // Crash the low tracker mid-run. Its peers stop receiving state-update
  // acks, declare it disconnected after fail_timeout, and re-join.
  t_low.crash();
  engine.run_until(30.0);

  for (PeerActor* p : low_zone) {
    EXPECT_EQ(p->rejoin_count(), 1) << "host " << p->host();
    ASSERT_TRUE(p->joined()) << "host " << p->host();
    EXPECT_EQ(p->tracker().node, t_high.host()) << "host " << p->host();
  }
  // Resources were republished: the surviving tracker's zone now carries
  // every orphaned peer with its original CPU donation.
  EXPECT_EQ(t_high.zone().size(), low_zone.size() + high_zone.size());
  for (PeerActor* p : low_zone) {
    const auto it = t_high.zone().find(p->host());
    ASSERT_NE(it, t_high.zone().end()) << "host " << p->host();
    EXPECT_EQ(it->second.peer.res.cpu_hz, kCpu);
  }
  // The neighbour sets healed: the survivor no longer lists the dead node.
  for (const TrackerRef& n : t_high.neighbor_set())
    EXPECT_NE(n.node, t_low.host());
}

TEST(OverlayFailover, RejoinedPeersRemainCollectable) {
  // After a failover, a submitter must still be able to reserve the
  // re-joined peers through the ordinary collection protocol.
  sim::Engine engine;
  const net::Platform plat = net::build_star(net::lan_spec(12));
  net::FlowNet flownet{engine, plat};
  Overlay ov{engine, plat, flownet};
  ov.create_server(plat.host(0));
  TrackerActor& doomed = ov.create_tracker(plat.host(1), /*core=*/true);
  ov.create_tracker(plat.host(8), /*core=*/true);
  ov.finish_bootstrap();
  PeerActor& submitter = ov.create_peer(plat.host(9), PeerResources{3e9, 1e9, 1e9});
  for (int i = 2; i <= 5; ++i)
    ov.create_peer(plat.host(i), PeerResources{3e9, 1e9, 1e9});

  engine.run_until(8.0);
  doomed.crash();
  engine.run_until(30.0);

  std::vector<PeerRef> reserved;
  bool done = false;
  engine.spawn([](PeerActor& sub, std::vector<PeerRef>& out, bool& flag) -> sim::Process {
    out = co_await sub.collect_peers(4, Requirements{}, /*ticket=*/1);
    flag = true;
  }(submitter, reserved, done));
  engine.run_until(60.0);
  ASSERT_TRUE(done);
  EXPECT_EQ(reserved.size(), 4u);
}

}  // namespace
}  // namespace pdc::overlay
