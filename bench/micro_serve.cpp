// Serving-layer microbench: what does the resident pdc_serve daemon buy
// over re-simulating every query? An in-process Server on an ephemeral
// loopback port answers the same scenario over real sockets: one cold
// request (full dPerf bench + trace sampling + reference run + replay),
// then a warm batch served from the memo cache. Reported: cold latency,
// warm latency distribution, warm requests/sec, and the cold/warm speedup —
// the number the ISSUE acceptance pins at >= 50x.
//
// Emits BENCH_serve.json (pass a path as argv[1] to redirect;
// --warm=<n> overrides the warm request count).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "support/json.hpp"
#include "support/socket.hpp"
#include "support/stats.hpp"

#include <thread>

namespace {

using namespace pdc;

// Fixed quick-class sizing (independent of PDC_QUICK) so emitted numbers
// are comparable across environments; mode=both so the cold path pays the
// full pipeline the daemon keeps warm.
const char* kScenario =
    "scenario micro-serve\n"
    "platform lan\n"
    "peers 4\n"
    "mode both\n"
    "grid 130\n"
    "iters 40\n"
    "bench 34 5 2\n";

double request_seconds(int port, const serve::Request& req, serve::Response& resp) {
  const auto t0 = std::chrono::steady_clock::now();
  Socket conn = connect_tcp("127.0.0.1", port);
  serve::write_request(conn, req);
  resp = serve::read_response(conn);
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = "BENCH_serve.json";
  int warm_requests = 200;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--warm=", 7) == 0)
      warm_requests = std::atoi(argv[i] + 7);
    else
      out_path = argv[i];
  }

  serve::ServerOptions opts;
  opts.tcp_port = 0;  // ephemeral
  serve::Server server{opts};
  const int port = server.port();
  std::thread serving([&server] { server.run(); });

  const serve::Request run{serve::RequestKind::RunScenario, kScenario};
  serve::Response resp;

  const double cold_seconds = request_seconds(port, run, resp);
  if (!resp.ok || resp.tag != "miss") {
    std::fprintf(stderr, "cold request failed: %s\n", resp.body.c_str());
    server.request_stop();
    serving.join();
    return 1;
  }
  const std::string cold_body = resp.body;
  std::printf("cold   %10.3f ms  (miss: full simulate)\n", cold_seconds * 1e3);

  std::vector<double> warm;
  warm.reserve(static_cast<std::size_t>(warm_requests));
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < warm_requests; ++i) {
    const double s = request_seconds(port, run, resp);
    if (!resp.ok || resp.tag != "hit" || resp.body != cold_body) {
      std::fprintf(stderr, "warm request %d was not a byte-identical hit\n", i);
      server.request_stop();
      serving.join();
      return 1;
    }
    warm.push_back(s);
  }
  const double warm_wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  const Summary w = summarize(warm);
  const double requests_per_sec =
      warm_wall > 0 ? static_cast<double>(warm_requests) / warm_wall : 0;
  const double speedup = w.mean > 0 ? cold_seconds / w.mean : 0;

  std::printf("warm   %10.3f ms mean  (p95 %.3f ms, n=%d, hit)\n", w.mean * 1e3,
              w.p95 * 1e3, warm_requests);
  std::printf("warm throughput %.0f requests/s\n", requests_per_sec);
  std::printf("cold/warm speedup %.0fx\n", speedup);

  server.request_stop();
  serving.join();

  pdc::JsonWriter jw;
  jw.begin_object();
  jw.kv("bench", "serve_cold_vs_warm");
  jw.kv("warm_requests", static_cast<std::int64_t>(warm_requests));
  jw.kv("cold_seconds", cold_seconds);
  jw.key("warm_seconds").begin_object();
  jw.kv("mean", w.mean);
  jw.kv("min", w.min);
  jw.kv("max", w.max);
  jw.kv("p50", w.p50);
  jw.kv("p95", w.p95);
  jw.end_object();
  jw.kv("warm_requests_per_sec", requests_per_sec);
  jw.kv("cold_over_warm_speedup", speedup);
  jw.end_object();

  std::FILE* f = std::fopen(out_path, "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::fputs(jw.str().c_str(), f);
  std::fputs("\n", f);
  std::fclose(f);
  std::printf("wrote %s\n", out_path);
  return 0;
}
