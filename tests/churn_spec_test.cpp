// churn::ChurnSpec: deterministic event expansion, text-format round trip,
// and the injector's behaviour against a live deployment.
#include "churn/spec.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "churn/injector.hpp"
#include "scenario/runner.hpp"
#include "scenario/spec.hpp"

namespace pdc::churn {
namespace {

TEST(ChurnSpec, DefaultIsDisabledAndRendersNothing) {
  ChurnSpec spec;
  EXPECT_FALSE(spec.enabled());
  EXPECT_EQ(render_churn_lines(spec), "");
  EXPECT_TRUE(expand_events(spec, 8, 42).empty());
}

TEST(ChurnSpec, ExpansionIsDeterministicAndSorted) {
  ChurnSpec spec;
  spec.peer_crash_rate = 0.01;
  spec.mean_downtime = 20;
  spec.link_degrade_rate = 0.02;
  spec.horizon = 200;
  const auto a = expand_events(spec, 6, 42);
  const auto b = expand_events(spec, 6, 42);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  EXPECT_TRUE(std::is_sorted(a.begin(), a.end(), [](const auto& x, const auto& y) {
    return x.at < y.at;
  }));
  // Every model crash pairs with a replacement join.
  int crashes = 0, joins = 0;
  for (const ChurnEvent& ev : a) {
    crashes += ev.kind == ChurnEvent::Kind::PeerCrash;
    joins += ev.kind == ChurnEvent::Kind::PeerJoin;
  }
  EXPECT_EQ(crashes, joins);
  EXPECT_GT(crashes, 0);

  // A different seed yields a different stream; an explicit churn seed wins
  // over the run seed.
  EXPECT_NE(expand_events(spec, 6, 43), a);
  spec.seed = 42;
  EXPECT_EQ(expand_events(spec, 6, 977), a);
}

TEST(ChurnSpec, PerWorkerStreamsAreStableAcrossPeerCounts) {
  ChurnSpec spec;
  spec.peer_crash_rate = 0.02;
  spec.mean_downtime = 0;  // crashes only, for easy comparison
  spec.horizon = 100;
  const auto small = expand_events(spec, 4, 1);
  const auto big = expand_events(spec, 8, 1);
  // Worker i's crash time does not move when the pool grows.
  for (const ChurnEvent& ev : small) {
    const bool found = std::any_of(big.begin(), big.end(), [&](const ChurnEvent& other) {
      return other.kind == ev.kind && other.target == ev.target && other.at == ev.at;
    });
    EXPECT_TRUE(found) << "worker " << ev.target;
  }
}

TEST(ChurnSpec, ScenarioTextRoundTrips) {
  scenario::ScenarioSpec spec;
  spec.run.churn.peer_crash_rate = 0.005;
  spec.run.churn.mean_downtime = 17.5;
  spec.run.churn.link_degrade_rate = 0.001;
  spec.run.churn.link_degrade_scale = 0.25;
  spec.run.churn.mean_degrade_time = 33;
  spec.run.churn.horizon = 120;
  spec.run.churn.seed = 9;
  spec.run.churn.max_attempts = 5;
  spec.run.churn.events = {
      {ChurnEvent::Kind::PeerCrash, 40, 1, 1.0},
      {ChurnEvent::Kind::PeerJoin, 55, -1, 1.0},
      {ChurnEvent::Kind::TrackerCrash, 60, 0, 1.0},
      {ChurnEvent::Kind::LinkDegrade, 10, 2, 0.4},
      {ChurnEvent::Kind::LinkDegrade, 12, -1, 0.5},
      {ChurnEvent::Kind::LinkRestore, 80, 2, 1.0},
      {ChurnEvent::Kind::LinkRestore, 90, -1, 1.0},
  };
  const std::string text = scenario::render_scenario(spec);
  const scenario::ScenarioSpec back = scenario::parse_scenario(text);
  EXPECT_EQ(back.run.churn, spec.run.churn);
  EXPECT_EQ(scenario::render_scenario(back), text);
}

TEST(ChurnSpec, ChurnFreeScenarioKeepsPreChurnTextForm) {
  // The rendered form of a churn-free scenario must contain no churn lines:
  // campaign resume identities from before the churn subsystem stay valid.
  const std::string text = scenario::render_scenario(scenario::ScenarioSpec{});
  EXPECT_EQ(text.find("churn"), std::string::npos);
}

TEST(ChurnSpec, MalformedChurnLinesThrowScenarioError) {
  const char* bad[] = {
      "churn",
      "churn rate",
      "churn rate x",
      "churn rate -1",
      "churn bogus 3",
      "churn link_scale 0",
      "churn link_scale 1.5",
      "churn attempts 0",
      "churn seed twelve",
      "churn event",
      "churn event warp at=1",
      "churn event crash-peer",
      "churn event crash-peer at=x",
      "churn event crash-peer at=-3",
      "churn event crash-peer at=1 peer=-2",
      "churn event crash-peer at=1 tracker=0",
      "churn event crash-peer at=1 peer=1 peer=2",
      "churn event degrade at=1 scale=0",
      "churn event degrade at=1 scale=2",
      "churn event join at=1 link=0",
      "churn event restore scale=1",
      "churn rate nan",
      "churn horizon inf",
      "churn link_scale nan",
      "churn event degrade at=nan link=0",
      "churn event crash-peer at=1 peer=99999999999999999999",
  };
  for (const char* line : bad)
    EXPECT_THROW(scenario::parse_scenario(std::string("scenario x\n") + line + "\n"),
                 scenario::ScenarioError)
        << line;
}

TEST(ChurnInjector, AppliesExplicitTimelineToDeployment) {
  scenario::RunSpec run;
  run.peers = 4;
  run.churn.events = {
      {ChurnEvent::Kind::LinkDegrade, 1.0, 0, 0.5},
      {ChurnEvent::Kind::PeerCrash, 2.0, 1, 1.0},
      {ChurnEvent::Kind::PeerCrash, 2.5, 1, 1.0},  // same worker: skipped
      {ChurnEvent::Kind::PeerJoin, 3.0, -1, 1.0},
      {ChurnEvent::Kind::PeerJoin, 3.5, -1, 1.0},
      {ChurnEvent::Kind::LinkRestore, 4.0, -1, 1.0},
  };
  auto d = scenario::deploy(scenario::PlatformSpec::lan(), run);
  ASSERT_EQ(d->spare_hosts.size(), 2u);  // one per join event in the timeline
  ASSERT_GE(d->crashable_trackers.size(), 3u);  // primary + two failover
  const std::size_t peers_before = d->env->over().peers().size();

  Injector inj(*d->env, d->workers, d->crashable_trackers, d->spare_hosts,
               d->churn_timeline, injection_seed(run.churn, run.seed));
  inj.arm();
  d->engine.run_until(10.0);

  const ChurnStats& st = inj.stats();
  EXPECT_EQ(st.peer_crashes, 1);
  EXPECT_EQ(st.peer_joins, 2);  // both joins fit: timeline sized the spares
  EXPECT_EQ(st.link_degrades, 1);
  EXPECT_EQ(st.link_restores, 1);
  EXPECT_EQ(st.events_skipped, 1);  // the double-crash of worker 1
  EXPECT_EQ(d->env->over().peers().size(), peers_before + 2);
  EXPECT_EQ(d->env->flownet().link_scale(0), 1.0);  // degraded then restored

  const overlay::PeerActor* crashed = d->env->over().peer_at(d->workers[1]);
  ASSERT_NE(crashed, nullptr);
  EXPECT_FALSE(crashed->alive());
}

TEST(ChurnInjector, NeverCrashesTheLastTracker) {
  scenario::RunSpec run;
  run.peers = 2;
  for (int i = 0; i < 6; ++i)
    run.churn.events.push_back(
        {ChurnEvent::Kind::TrackerCrash, 1.0 + i, -1, 1.0});
  auto d = scenario::deploy(scenario::PlatformSpec::lan(), run);
  Injector inj(*d->env, d->workers, d->crashable_trackers, d->spare_hosts,
               d->churn_timeline, injection_seed(run.churn, run.seed));
  inj.arm();
  d->engine.run_until(10.0);
  int alive = 0;
  for (const overlay::TrackerActor* t : d->env->over().trackers()) alive += t->alive();
  EXPECT_EQ(alive, 1);
  EXPECT_EQ(inj.stats().tracker_crashes, 2);  // 3 crashable, one must survive
  EXPECT_EQ(inj.stats().events_skipped, 4);
}

}  // namespace
}  // namespace pdc::churn
