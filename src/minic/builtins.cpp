#include "minic/builtins.hpp"

namespace pdc::minic {

const std::vector<BuiltinSig>& builtins() {
  static const std::vector<BuiltinSig> kTable{
      {"sqrt", Type::Double, {Type::Double}, false},
      {"fabs", Type::Double, {Type::Double}, false},
      {"fmax", Type::Double, {Type::Double, Type::Double}, false},
      {"fmin", Type::Double, {Type::Double, Type::Double}, false},
      {"floor", Type::Double, {Type::Double}, false},
      {"p2p_rank", Type::Int, {}, false},
      {"p2p_nprocs", Type::Int, {}, false},
      {"p2p_send", Type::Void,
       {Type::Int, Type::Int, Type::DoubleArray, Type::Int, Type::Int}, true},
      {"p2p_recv", Type::Void,
       {Type::Int, Type::Int, Type::DoubleArray, Type::Int, Type::Int}, true},
      {"p2p_allreduce_max", Type::Double, {Type::Double}, true},
      {"p2p_param", Type::Int, {Type::Int}, false},
      {"p2p_param_f", Type::Double, {Type::Int}, false},
      {"dperf_block_begin", Type::Void, {Type::Int}, false},
      {"dperf_block_end", Type::Void, {Type::Int}, false},
      {"dperf_iter_mark", Type::Void, {Type::Int}, false},
  };
  return kTable;
}

std::optional<BuiltinSig> find_builtin(const std::string& name) {
  for (const BuiltinSig& b : builtins())
    if (b.name == name) return b;
  return std::nullopt;
}

bool is_comm_builtin(const std::string& name) {
  auto b = find_builtin(name);
  return b && b->is_comm;
}

}  // namespace pdc::minic
