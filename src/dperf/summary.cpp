#include "dperf/summary.hpp"

#include <algorithm>

namespace pdc::dperf {

std::uint64_t TraceSummary::op_count() const {
  std::uint64_t n = pre.size();
  for (const IterBlock& b : blocks)
    n += static_cast<std::uint64_t>(b.ops.size()) * b.repeats;
  return n;
}

TraceSummary summarize_trace(const Trace& trace) {
  TraceSummary s;
  s.rank = trace.rank;
  s.nprocs = trace.nprocs;
  s.host_hz = trace.host_hz;
  s.send_to.assign(static_cast<std::size_t>(std::max(trace.nprocs, 1)), PeerVolume{});

  // Marker positions partition the event stream.
  std::vector<std::size_t> markers;
  for (std::size_t i = 0; i < trace.events.size(); ++i)
    if (trace.events[i].kind == TraceEvent::Kind::IterMark) markers.push_back(i);
  s.iterations = markers.size();

  const auto body = [&trace](std::size_t from, std::size_t to) {
    std::vector<TraceEvent> ops;
    ops.reserve(to - from);
    for (std::size_t i = from; i < to; ++i)
      if (trace.events[i].kind != TraceEvent::Kind::IterMark)
        ops.push_back(trace.events[i]);
    return ops;
  };

  const std::size_t first = markers.empty() ? trace.events.size() : markers.front();
  s.pre = body(0, first);

  for (std::size_t m = 0; m < markers.size(); ++m) {
    const std::size_t from = markers[m];
    const std::size_t to = m + 1 < markers.size() ? markers[m + 1] : trace.events.size();
    std::vector<TraceEvent> ops = body(from, to);
    std::uint64_t compute = 0;
    for (const TraceEvent& e : ops)
      if (e.kind == TraceEvent::Kind::Compute) compute += e.ns;
    s.span_ns = std::max(s.span_ns, compute);
    if (!s.blocks.empty() && s.blocks.back().ops == ops)
      ++s.blocks.back().repeats;
    else
      s.blocks.push_back(IterBlock{std::move(ops), 1});
  }

  for (const TraceEvent& e : trace.events) {
    switch (e.kind) {
      case TraceEvent::Kind::Compute:
        s.total_compute_ns += e.ns;
        break;
      case TraceEvent::Kind::Send:
        if (e.peer >= 0 && e.peer < trace.nprocs) {
          s.send_to[static_cast<std::size_t>(e.peer)].bytes += e.bytes;
          ++s.send_to[static_cast<std::size_t>(e.peer)].count;
        }
        break;
      case TraceEvent::Kind::Allreduce:
        ++s.collectives;
        break;
      case TraceEvent::Kind::Recv:
      case TraceEvent::Kind::IterMark:
        break;
    }
  }
  return s;
}

}  // namespace pdc::dperf
