// Property test: every optimization level computes the same result as -O0
// on randomly generated MiniC programs. This is the compiler's main
// soundness net: folding, promotion, CSE, LICM and unrolling must all be
// semantics-preserving.
#include <gtest/gtest.h>

#include <string>

#include "ir/pipeline.hpp"
#include "support/rng.hpp"
#include "vm/vm.hpp"

namespace pdc {
namespace {

/// Generates random but well-formed programs: int/double scalars, one
/// double array, nested counted loops, if/else, arithmetic with literal
/// divisors only (no division traps), all accumulated into a checksum.
class ProgramGen {
 public:
  explicit ProgramGen(Rng& rng) : rng_(rng) {}

  std::string generate() {
    body_.clear();
    depth_ = 1;
    int_vars_ = {"a", "b", "c"};
    writable_int_vars_ = {"a", "b", "c"};
    dbl_vars_ = {"x", "y"};
    line("int a = " + std::to_string(rng_.uniform_int(-5, 5)) + ";");
    line("int b = " + std::to_string(rng_.uniform_int(1, 7)) + ";");
    line("int c = " + std::to_string(rng_.uniform_int(-3, 9)) + ";");
    line("double x = " + std::to_string(rng_.uniform_int(-4, 4)) + ".5;");
    line("double y = 0.25;");
    line("double arr[16];");
    line("for (int q = 0; q < 16; q = q + 1) { arr[q] = 0.5 * q; }");
    const int stmts = static_cast<int>(rng_.uniform_int(4, 9));
    for (int i = 0; i < stmts; ++i) statement();
    // Checksum: mix everything into an int in a wrap-safe way. Guard
    // against NaN (x != x) and Inf (bounded halving loop).
    line("double chk = x + y + arr[3] + arr[11] + a + b + c;");
    line("if (chk != chk) { chk = 0.125; }");
    line("if (chk < 0.0) { chk = 0.0 - chk; }");
    line("int guard = 0;");
    line("while (chk > 500.0 && guard < 4000) { chk = chk / 2.0; guard = guard + 1; }");
    line("if (chk > 500.0) { chk = 0.25; }");
    line("int ichk = 0;");
    line("while (chk >= 1.0 && ichk < 2000) { chk = chk - 1.0; ichk = ichk + 1; }");
    line("return a % 97 + b % 89 + c % 83 + ichk;");
    std::string out = "int main() {\n";
    for (const auto& l : body_) out += "  " + l + "\n";
    out += "}\n";
    return out;
  }

 private:
  void line(std::string s) { body_.push_back(std::move(s)); }

  std::string pick(const std::vector<std::string>& v) {
    return v[static_cast<std::size_t>(rng_.uniform_int(0, static_cast<int>(v.size()) - 1))];
  }

  std::string int_expr(int depth = 0) {
    const int choice = static_cast<int>(rng_.uniform_int(0, depth > 2 ? 1 : 5));
    switch (choice) {
      case 0: return std::to_string(rng_.uniform_int(-9, 9));
      case 1: return pick(int_vars_);
      case 2: return "(" + int_expr(depth + 1) + " + " + int_expr(depth + 1) + ")";
      case 3: return "(" + int_expr(depth + 1) + " * " + int_expr(depth + 1) + ")";
      case 4: return "(" + int_expr(depth + 1) + " - " + int_expr(depth + 1) + ")";
      default:
        // Division/modulo by non-zero literals only.
        return "(" + int_expr(depth + 1) + (rng_.bernoulli(0.5) ? " / " : " % ") +
               std::to_string(rng_.uniform_int(1, 9)) + ")";
    }
  }

  std::string dbl_expr(int depth = 0) {
    const int choice = static_cast<int>(rng_.uniform_int(0, depth > 2 ? 1 : 6));
    switch (choice) {
      case 0: return std::to_string(rng_.uniform_int(-9, 9)) + ".25";
      case 1: return pick(dbl_vars_);
      case 2: return "(" + dbl_expr(depth + 1) + " + " + dbl_expr(depth + 1) + ")";
      case 3: return "(" + dbl_expr(depth + 1) + " * " + dbl_expr(depth + 1) + ")";
      case 4: return "(" + dbl_expr(depth + 1) + " - " + dbl_expr(depth + 1) + ")";
      case 5: return "fabs(" + dbl_expr(depth + 1) + ")";
      default: return "arr[(" + int_expr(depth + 1) + " % 16 + 16) % 16]";
    }
  }

  std::string cond_expr() {
    const char* ops[] = {"<", "<=", ">", ">=", "==", "!="};
    std::string c = int_expr(1) + " " + ops[rng_.uniform_int(0, 5)] + " " + int_expr(1);
    if (rng_.bernoulli(0.3))
      c += rng_.bernoulli(0.5) ? " && " + cond_simple() : " || " + cond_simple();
    return c;
  }
  std::string cond_simple() {
    return int_expr(2) + (rng_.bernoulli(0.5) ? " < " : " != ") + int_expr(2);
  }

  void statement() {
    if (depth_ > 3) {
      assign();
      return;
    }
    switch (rng_.uniform_int(0, 5)) {
      case 0:
      case 1: assign(); break;
      case 2: {  // counted loop over a fresh induction variable
        const std::string iv = "i" + std::to_string(counter_++);
        const int trips = static_cast<int>(rng_.uniform_int(0, 9));
        line("for (int " + iv + " = 0; " + iv + " < " + std::to_string(trips) + "; " + iv +
             " = " + iv + " + 1) {");
        ++depth_;
        int_vars_.push_back(iv);
        assign();
        if (rng_.bernoulli(0.5)) assign();
        int_vars_.pop_back();
        --depth_;
        line("}");
        break;
      }
      case 3: {
        line("if (" + cond_expr() + ") {");
        ++depth_;
        assign();
        --depth_;
        if (rng_.bernoulli(0.5)) {
          line("} else {");
          ++depth_;
          assign();
          --depth_;
        }
        line("}");
        break;
      }
      case 4: {  // array store
        line("arr[(" + int_expr(1) + " % 16 + 16) % 16] = " + dbl_expr(1) + ";");
        break;
      }
      default: {  // bounded while
        const std::string wv = "w" + std::to_string(counter_++);
        line("int " + wv + " = " + std::to_string(rng_.uniform_int(0, 6)) + ";");
        line("while (" + wv + " > 0) {");
        ++depth_;
        int_vars_.push_back(wv);
        assign();
        line(wv + " = " + wv + " - 1;");
        int_vars_.pop_back();
        --depth_;
        line("}");
        break;
      }
    }
  }

  void assign() {
    if (rng_.bernoulli(0.5)) {
      const std::string v = pick(writable_int_vars_);
      // Keep magnitudes bounded so int results never overflow.
      line(v + " = (" + int_expr() + ") % 1000;");
    } else {
      const std::string v = pick(dbl_vars_);
      line(v + " = " + dbl_expr() + ";");
      line("if (fabs(" + v + ") > 100000.0) { " + v + " = 1.5; }");
    }
  }

  Rng& rng_;
  std::vector<std::string> body_;
  std::vector<std::string> int_vars_, dbl_vars_;
  // Only non-induction variables may be assignment targets, so generated
  // loops always terminate.
  std::vector<std::string> writable_int_vars_;
  int depth_ = 1;
  int counter_ = 0;
};

class OptEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(OptEquivalence, AllLevelsMatchO0) {
  Rng rng{static_cast<std::uint64_t>(GetParam()) * 7919 + 13};
  ProgramGen gen{rng};
  const std::string src = gen.generate();
  SCOPED_TRACE(src);

  long long reference = 0;
  {
    const ir::IrProgram prog = ir::compile_source(src, ir::OptLevel::O0);
    vm::Vm m{prog};
    m.set_cycle_limit(5e7);
    reference = m.run_main();
  }
  for (ir::OptLevel lvl :
       {ir::OptLevel::O1, ir::OptLevel::O2, ir::OptLevel::O3, ir::OptLevel::Os}) {
    const ir::IrProgram prog = ir::compile_source(src, lvl);
    vm::Vm m{prog};
    m.set_cycle_limit(5e7);
    EXPECT_EQ(m.run_main(), reference) << "level " << ir::opt_level_name(lvl);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, OptEquivalence, ::testing::Range(0, 60));

}  // namespace
}  // namespace pdc
