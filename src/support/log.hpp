// Minimal leveled logging. Off by default so tests and benches stay quiet;
// examples turn on Info to narrate protocol activity.
//
// Thread-safety: the level is atomic and each log_line is written to stderr
// as one uninterruptible line under a process-wide mutex, so concurrent
// campaign runs cannot interleave partial lines. A worker thread executing
// a run installs a LogRunTag; every line it emits is then prefixed with the
// run's name so interleaved campaign output stays attributable.
#pragma once

#include <string>

namespace pdc {

enum class LogLevel { Off = 0, Error = 1, Warn = 2, Info = 3, Debug = 4 };

/// Sets the global log threshold (atomic; safe from any thread).
void set_log_level(LogLevel level);
LogLevel log_level();

/// Writes one line to stderr when `level` is at or below the threshold.
/// Serialized: lines from concurrent threads never interleave.
void log_line(LogLevel level, const std::string& msg);

/// The calling thread's current run tag ("" when none is installed).
const std::string& log_run_tag();

/// RAII: tags every log_line the current thread emits with `tag`
/// ("[WARN][tag] msg"). Nests; restores the previous tag on destruction.
class LogRunTag {
 public:
  explicit LogRunTag(std::string tag);
  ~LogRunTag();

  LogRunTag(const LogRunTag&) = delete;
  LogRunTag& operator=(const LogRunTag&) = delete;

 private:
  std::string previous_;
};

}  // namespace pdc

#define PDC_LOG_WARN(msg)                                    \
  do {                                                       \
    if (::pdc::log_level() >= ::pdc::LogLevel::Warn)         \
      ::pdc::log_line(::pdc::LogLevel::Warn, (msg));         \
  } while (0)

#define PDC_LOG_INFO(msg)                                    \
  do {                                                       \
    if (::pdc::log_level() >= ::pdc::LogLevel::Info)         \
      ::pdc::log_line(::pdc::LogLevel::Info, (msg));         \
  } while (0)

#define PDC_LOG_DEBUG(msg)                                   \
  do {                                                       \
    if (::pdc::log_level() >= ::pdc::LogLevel::Debug)        \
      ::pdc::log_line(::pdc::LogLevel::Debug, (msg));        \
  } while (0)
