// Simulated-time representation and unit helpers.
//
// Simulated time is a double counting *seconds* since the start of the
// simulation (the SimGrid convention). dPerf traces, like the paper's, store
// durations as integral nanoseconds; the helpers below convert between the
// two representations.
#pragma once

#include <cstdint>

namespace pdc {

/// Simulated time in seconds. 0.0 is the start of the simulation.
using Time = double;

/// A duration that compares greater than any schedulable time.
inline constexpr Time kTimeInfinity = 1e300;

namespace units {
inline constexpr Time ns = 1e-9;
inline constexpr Time us = 1e-6;
inline constexpr Time ms = 1e-3;
inline constexpr Time sec = 1.0;
inline constexpr Time minute = 60.0;

/// Bandwidths are bytes/second throughout the code base.
inline constexpr double Kbps = 1e3 / 8.0;
inline constexpr double Mbps = 1e6 / 8.0;
inline constexpr double Gbps = 1e9 / 8.0;

inline constexpr double KiB = 1024.0;
inline constexpr double MiB = 1024.0 * 1024.0;
}  // namespace units

/// Converts a duration in seconds to integral nanoseconds (round to nearest).
/// Trace files store nanoseconds, as the paper's PAPI-based traces do.
constexpr std::uint64_t to_ns(Time t) {
  return t <= 0 ? 0 : static_cast<std::uint64_t>(t * 1e9 + 0.5);
}

/// Converts integral nanoseconds to seconds.
constexpr Time from_ns(std::uint64_t n) { return static_cast<Time>(n) * 1e-9; }

}  // namespace pdc
