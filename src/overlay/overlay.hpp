// The decentralized P2PDC topology manager (paper §III-A):
//
//  * Server: contact point for nodes joining the overlay for the first
//    time; stores tracker registry and zone statistics. The overlay keeps
//    working while the server is down.
//  * Trackers: form a line ordered by IP address; each tracker maintains a
//    set N of closest trackers, half with lower and half with higher IPs,
//    and direct connections (heartbeats) to its immediate neighbours.
//    Joins are routed greedily to the closest tracker; crashes are detected
//    by direct neighbours and repaired by exchanging neighbour-set halves.
//  * Peers: join the zone of the closest tracker, publish their resources,
//    refresh them periodically, and fail over to a neighbour zone when
//    their tracker stops acknowledging updates after time T.
//
// Peers collection (paper §III-B) is implemented by PeerActor::collect_peers:
// the submitter asks its own tracker, then every tracker in its local list,
// then repeatedly expands the known-tracker horizon through the farthest
// trackers on both sides until enough peers are reserved.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/flow.hpp"
#include "overlay/types.hpp"
#include "sim/engine.hpp"
#include "sim/mailbox.hpp"
#include "sim/task.hpp"

namespace pdc::overlay {

class Overlay;

/// Common actor plumbing: two mailboxes (main protocol + RPC replies) and
/// liveness control.
class ActorBase {
 public:
  ActorBase(Overlay& overlay, NodeIdx host, Ipv4 ip);
  virtual ~ActorBase() = default;

  NodeIdx host() const { return host_; }
  Ipv4 ip() const { return ip_; }
  bool alive() const { return alive_; }

  /// Graceful stop: the main loop exits at its next wake-up.
  void stop() { alive_ = false; }
  /// Crash: additionally, all queued and future messages are dropped.
  void crash() {
    alive_ = false;
    crashed_ = true;
  }
  bool crashed() const { return crashed_; }

 protected:
  friend class Overlay;
  Overlay* overlay_;
  NodeIdx host_;
  Ipv4 ip_;
  bool alive_ = true;
  bool crashed_ = false;
  sim::Mailbox<CtrlMsg> main_box_;
  sim::Mailbox<CtrlMsg> rpc_box_;
};

class ServerActor : public ActorBase {
 public:
  ServerActor(Overlay& overlay, NodeIdx host, Ipv4 ip) : ActorBase(overlay, host, ip) {}

  sim::Process run();

  /// Bootstrap registration of an administrator-managed core tracker.
  void register_core_tracker(TrackerRef t) { trackers_.push_back(t); }

  const std::vector<TrackerRef>& known_trackers() const { return trackers_; }
  const std::map<NodeIdx, ZoneStats>& zone_stats() const { return stats_; }

 private:
  void handle(CtrlMsg msg);
  std::vector<TrackerRef> trackers_;
  std::map<NodeIdx, ZoneStats> stats_;
};

/// One entry of a tracker's zone.
struct ZonePeer {
  PeerRef peer;
  bool busy = false;
  Time last_update = 0;
};

class TrackerActor : public ActorBase {
 public:
  TrackerActor(Overlay& overlay, NodeIdx host, Ipv4 ip, bool bootstrap_core)
      : ActorBase(overlay, host, ip), bootstrap_core_(bootstrap_core) {}

  sim::Process run();

  // --- inspection (tests, stats) ---
  const std::vector<TrackerRef>& neighbor_set() const { return neighbors_; }
  const std::map<NodeIdx, ZonePeer>& zone() const { return zone_; }
  std::optional<TrackerRef> left_neighbor() const;   // closest lower-IP neighbour
  std::optional<TrackerRef> right_neighbor() const;  // closest higher-IP neighbour
  bool joined() const { return joined_; }

  /// Bootstrap: install an initial neighbour set without running the join
  /// protocol (administrator-configured core trackers, paper §III-A.3).
  void bootstrap_neighbors(std::vector<TrackerRef> neighbors);

 private:
  friend class Overlay;
  void handle(CtrlMsg msg);
  sim::Task<void> join_overlay();
  void insert_neighbor(TrackerRef t);
  void remove_neighbor(NodeIdx node);
  void trim_neighbors();
  /// Closest tracker to `target` among the neighbour set and self.
  TrackerRef closest_known(Ipv4 target) const;
  std::vector<TrackerRef> neighbors_for(Ipv4 joiner) const;
  void detect_dead_neighbors();
  void expire_stale_peers();
  void send_heartbeats();
  void report_stats();

  bool bootstrap_core_;
  bool joined_ = false;
  std::vector<TrackerRef> neighbors_;  // sorted by IP
  std::map<NodeIdx, Time> neighbor_last_seen_;
  std::map<NodeIdx, ZonePeer> zone_;
  Time next_heartbeat_ = 0;
  Time next_stats_ = 0;
};

class PeerActor : public ActorBase {
 public:
  PeerActor(Overlay& overlay, NodeIdx host, Ipv4 ip, PeerResources res)
      : ActorBase(overlay, host, ip), res_(res) {}

  sim::Process run();

  // --- inspection ---
  bool joined() const { return tracker_.node >= 0; }
  TrackerRef tracker() const { return tracker_; }
  const std::vector<TrackerRef>& tracker_list() const { return tracker_list_; }
  bool busy() const { return busy_; }
  const PeerResources& resources() const { return res_; }
  int rejoin_count() const { return rejoins_; }

  /// Releases a reservation made by a submitter (local action + notice).
  void release();

  /// Peers collection for a task (paper §III-B), run on the submitter.
  /// Returns the reserved peers (may be fewer than requested if the overlay
  /// is exhausted). `ticket` identifies the reservation.
  sim::Task<std::vector<PeerRef>> collect_peers(int wanted, Requirements req,
                                                std::uint64_t ticket);

 private:
  friend class Overlay;
  void handle(CtrlMsg msg);
  sim::Task<void> join_overlay();
  sim::Task<std::optional<CtrlMsg>> rpc(NodeIdx to, CtrlMsg msg);

  PeerResources res_;
  TrackerRef tracker_{-1, Ipv4{}};
  std::vector<TrackerRef> tracker_list_;
  bool busy_ = false;
  NodeIdx reserved_by_ = -1;
  Time last_ack_ = 0;
  int rejoins_ = 0;
};

/// The overlay context: actor registry plus the control-plane transport
/// (small network flows carrying CtrlMsg values).
class Overlay {
 public:
  Overlay(sim::Engine& engine, const net::Platform& platform, net::FlowNet& flownet,
          OverlayConfig config = {});
  Overlay(const Overlay&) = delete;
  Overlay& operator=(const Overlay&) = delete;

  ServerActor& create_server(NodeIdx host);
  /// `bootstrap_core` trackers skip the join protocol; they are wired
  /// directly into each other's neighbour sets by finish_bootstrap().
  TrackerActor& create_tracker(NodeIdx host, bool bootstrap_core = false);
  PeerActor& create_peer(NodeIdx host, PeerResources res);

  /// Wires all bootstrap-core trackers into a consistent initial line and
  /// registers them with the server. Call once after creating the cores.
  void finish_bootstrap();

  /// Sends a control message as a network flow, then delivers it.
  void send_ctrl(NodeIdx from, NodeIdx to, CtrlMsg msg);

  sim::Engine& engine() { return *engine_; }
  const net::Platform& platform() const { return *platform_; }
  const OverlayConfig& config() const { return config_; }
  ServerActor* server() { return server_; }
  NodeIdx server_host() const { return server_ ? server_->host() : -1; }

  TrackerActor* tracker_at(NodeIdx host);
  PeerActor* peer_at(NodeIdx host);
  const std::vector<TrackerActor*>& trackers() const { return tracker_ptrs_; }
  const std::vector<PeerActor*>& peers() const { return peer_ptrs_; }

  /// Initial tracker list installed on new nodes (paper: set at install
  /// time together with the server address).
  std::vector<TrackerRef> install_tracker_list() const { return core_trackers_; }

  /// Stops every actor so Engine::run() can drain.
  void shutdown();

  std::uint64_t ctrl_messages_sent() const { return ctrl_messages_; }

 private:
  friend class ActorBase;
  friend class ServerActor;
  friend class TrackerActor;
  friend class PeerActor;

  void deliver(NodeIdx to, CtrlMsg msg);

  sim::Engine* engine_;
  const net::Platform* platform_;
  net::FlowNet* net_;
  OverlayConfig config_;
  ServerActor* server_ = nullptr;
  std::map<NodeIdx, std::unique_ptr<ActorBase>> actors_;
  std::vector<TrackerActor*> tracker_ptrs_;
  std::vector<PeerActor*> peer_ptrs_;
  std::vector<TrackerRef> core_trackers_;
  std::uint64_t ctrl_messages_ = 0;
};

}  // namespace pdc::overlay
