#include <gtest/gtest.h>

#include "minic/builtins.hpp"
#include "minic/parser.hpp"
#include "minic/sema.hpp"
#include "minic/token.hpp"
#include "minic/unparse.hpp"

namespace pdc::minic {
namespace {

TEST(Lexer, TokenizesOperatorsAndLiterals) {
  const auto toks = lex("x1 = 3 + 4.5e2 <= 7; // comment\n/* block */ y != x && z");
  ASSERT_GE(toks.size(), 12u);
  EXPECT_EQ(toks[0].kind, Tok::Ident);
  EXPECT_EQ(toks[1].kind, Tok::Assign);
  EXPECT_EQ(toks[2].kind, Tok::IntLit);
  EXPECT_EQ(toks[2].int_val, 3);
  EXPECT_EQ(toks[3].kind, Tok::Plus);
  EXPECT_EQ(toks[4].kind, Tok::FloatLit);
  EXPECT_DOUBLE_EQ(toks[4].float_val, 450.0);
  EXPECT_EQ(toks[5].kind, Tok::Le);
}

TEST(Lexer, TracksLineNumbers) {
  const auto toks = lex("a\nbb\n  ccc");
  EXPECT_EQ(toks[0].line, 1);
  EXPECT_EQ(toks[1].line, 2);
  EXPECT_EQ(toks[2].line, 3);
  EXPECT_EQ(toks[2].col, 3);
}

TEST(Lexer, RejectsBadInput) {
  EXPECT_THROW(lex("a $ b"), CompileError);
  EXPECT_THROW(lex("a & b"), CompileError);
  EXPECT_THROW(lex("/* unterminated"), CompileError);
  EXPECT_THROW(lex("1e+"), CompileError);
}

const char* kValid = R"(
double relax(double u[], int n, double omega) {
  double acc = 0.0;
  for (int i = 1; i < n - 1; i = i + 1) {
    u[i] = (1.0 - omega) * u[i] + omega * 0.5 * (u[i - 1] + u[i + 1]);
    acc = fmax(acc, fabs(u[i]));
  }
  return acc;
}

int main() {
  int n = 32;
  double u[n];
  for (int i = 0; i < n; i = i + 1) { u[i] = 1.0 * i; }
  double r = relax(u, n, 1.2);
  if (r > 10.0 && n % 2 == 0) { return 1; } else { return 0; }
}
)";

TEST(Parser, ParsesRepresentativeProgram) {
  Program p = parse(kValid);
  ASSERT_EQ(p.functions.size(), 2u);
  EXPECT_EQ(p.functions[0].name, "relax");
  EXPECT_EQ(p.functions[0].params.size(), 3u);
  EXPECT_EQ(p.functions[0].params[0].type, Type::DoubleArray);
  EXPECT_NE(p.find("main"), nullptr);
}

TEST(Parser, PrecedenceIsConventional) {
  Program p = parse("int main() { int x = 1 + 2 * 3 < 7 == 1; return x; }");
  // ((1 + (2*3)) < 7) == 1
  const Expr& e = *p.functions[0].body[0]->init;
  EXPECT_EQ(e.bin, BinOp::Eq);
  EXPECT_EQ(e.kids[0]->bin, BinOp::Lt);
  EXPECT_EQ(e.kids[0]->kids[0]->bin, BinOp::Add);
  EXPECT_EQ(e.kids[0]->kids[0]->kids[1]->bin, BinOp::Mul);
}

TEST(Parser, ReportsErrorsWithLocation) {
  try {
    parse("int main() {\n  int x = ;\n}");
    FAIL() << "expected CompileError";
  } catch (const CompileError& e) {
    EXPECT_EQ(e.line(), 2);
  }
  EXPECT_THROW(parse("int main( { }"), CompileError);
  EXPECT_THROW(parse("int main() { 3 = x; }"), CompileError);
  EXPECT_THROW(parse("int main() { return 1 }"), CompileError);
}

TEST(Sema, AcceptsValidProgram) {
  Program p = parse(kValid);
  EXPECT_NO_THROW(check(p));
  // Types were annotated (body[3] is `double r = relax(u, n, 1.2);`).
  ASSERT_EQ(p.functions[1].body[3]->kind, Stmt::Kind::Decl);
  EXPECT_EQ(p.functions[1].body[3]->init->type, Type::Double);
}

TEST(Sema, RejectsUndeclaredVariable) {
  Program p = parse("int main() { return missing; }");
  EXPECT_THROW(check(p), CompileError);
}

TEST(Sema, RejectsRedeclarationInSameScope) {
  Program p = parse("int main() { int a = 1; int a = 2; return a; }");
  EXPECT_THROW(check(p), CompileError);
}

TEST(Sema, AllowsShadowingInNestedScope) {
  Program p = parse("int main() { int a = 1; { int a = 2; a = 3; } return a; }");
  EXPECT_NO_THROW(check(p));
}

TEST(Sema, RejectsDoubleToIntAssignment) {
  Program p = parse("int main() { int a = 1.5; return a; }");
  EXPECT_THROW(check(p), CompileError);
}

TEST(Sema, AllowsIntToDoublePromotion) {
  Program p = parse("int main() { double d = 3; d = d + 1; return 0; }");
  EXPECT_NO_THROW(check(p));
}

TEST(Sema, RejectsModOnDoubles) {
  Program p = parse("int main() { double d = 1.0; double e = 2.0; int x = d % e; return x; }");
  EXPECT_THROW(check(p), CompileError);
}

TEST(Sema, RejectsNonIntCondition) {
  Program p = parse("int main() { if (1.5) { return 1; } return 0; }");
  EXPECT_THROW(check(p), CompileError);
}

TEST(Sema, RejectsWrongArity) {
  Program p = parse("int main() { double d = fmax(1.0); return 0; }");
  EXPECT_THROW(check(p), CompileError);
}

TEST(Sema, RejectsBadArrayUsage) {
  Program p1 = parse("int main() { int x = 3; return x[0]; }");
  EXPECT_THROW(check(p1), CompileError);
  Program p2 = parse("int main() { double a[4]; double b[4]; a = b; return 0; }");
  EXPECT_THROW(check(p2), CompileError);
  Program p3 = parse("int main() { double a[4]; return a[1.5]; }");
  EXPECT_THROW(check(p3), CompileError);
}

TEST(Sema, RejectsCommBuiltinMisuse) {
  Program p = parse("int main() { int a[3]; p2p_send(0, 1, a, 0, 3); return 0; }");
  EXPECT_THROW(check(p), CompileError);  // int[] where double[] required
}

TEST(Sema, RejectsUnknownFunction) {
  Program p = parse("int main() { return mystery(); }");
  EXPECT_THROW(check(p), CompileError);
}

TEST(Sema, RejectsShadowingBuiltins) {
  Program p = parse("double sqrt(double x) { return x; } int main() { return 0; }");
  EXPECT_THROW(check(p), CompileError);
}

TEST(Sema, ChecksReturnTypes) {
  Program p1 = parse("void f() { return 3; } int main() { return 0; }");
  EXPECT_THROW(check(p1), CompileError);
  Program p2 = parse("int f() { return; } int main() { return 0; }");
  EXPECT_THROW(check(p2), CompileError);
  Program p3 = parse("int f() { return 2.5; } int main() { return 0; }");
  EXPECT_THROW(check(p3), CompileError);
}

TEST(Builtins, CommClassification) {
  EXPECT_TRUE(is_comm_builtin("p2p_send"));
  EXPECT_TRUE(is_comm_builtin("p2p_recv"));
  EXPECT_TRUE(is_comm_builtin("p2p_allreduce_max"));
  EXPECT_FALSE(is_comm_builtin("sqrt"));
  EXPECT_FALSE(is_comm_builtin("p2p_rank"));
  EXPECT_FALSE(is_comm_builtin("dperf_block_begin"));
}

TEST(Unparse, RoundTripIsAFixpoint) {
  Program p1 = parse(kValid);
  const std::string s1 = unparse(p1);
  Program p2 = parse(s1);
  const std::string s2 = unparse(p2);
  EXPECT_EQ(s1, s2);
  // And the reparsed program still type checks.
  EXPECT_NO_THROW(check(p2));
}

TEST(Unparse, PreservesPrecedenceWithParentheses) {
  Program p = parse("int main() { int x = (1 + 2) * 3; int y = -(4 + 5); return x + y; }");
  const std::string s = unparse(p);
  EXPECT_NE(s.find("(1 + 2) * 3"), std::string::npos);
  EXPECT_NE(s.find("-(4 + 5)"), std::string::npos);
}

TEST(Unparse, FloatLiteralsStayFloats) {
  Program p = parse("int main() { double d = 2.0; double e = 1.5e3; return 0; }");
  const std::string s = unparse(p);
  Program p2 = parse(s);
  EXPECT_EQ(p2.functions[0].body[0]->init->kind, Expr::Kind::FloatLit);
  EXPECT_DOUBLE_EQ(p2.functions[0].body[1]->init->float_lit, 1500.0);
}

TEST(Ast, CloneIsDeep) {
  Program p = parse(kValid);
  Program q = p.clone();
  q.functions[0].body.clear();
  EXPECT_FALSE(p.functions[0].body.empty());
  EXPECT_EQ(unparse(p), unparse(parse(kValid)));
}

}  // namespace
}  // namespace pdc::minic
