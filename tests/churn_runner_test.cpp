// Churn end-to-end: scenarios complete (or record structured errors) under
// scheduled peer/tracker/link faults, both phases replay the identical event
// stream, and a campaign sweeping churn rate is bit-for-bit deterministic
// across -j levels.
#include <gtest/gtest.h>

#include <string>

#include "campaign/executor.hpp"
#include "expect_json_equal.hpp"
#include "scenario/runner.hpp"
#include "support/json.hpp"

namespace pdc::scenario {
namespace {

/// Small-but-real sizing (same as scenario_runner_test): a few seconds of
/// simulated work, well under a second of wall clock.
RunSpec smoke_run(int peers) {
  RunSpec run;
  run.peers = peers;
  run.grid_n = 66;
  run.iters = 24;
  run.rcheck = 4;
  run.bench_n = 34;
  run.bench_iters = 6;
  run.bench_rcheck = 3;
  return run;
}

// The deployment warms the overlay for 12 simulated seconds before
// submitting, so t=12.05 lands inside the solve and t<12 inside bootstrap.
constexpr double kWarmup = 12.0;

TEST(ChurnRunner, MidRunPeerCrashReallocatesAndCompletes) {
  RunSpec run = smoke_run(4);
  run.mode = Mode::Both;
  run.churn.max_attempts = 3;
  run.churn.events = {
      {churn::ChurnEvent::Kind::PeerCrash, kWarmup + 0.05, 1, 1.0},
      {churn::ChurnEvent::Kind::PeerJoin, kWarmup + 1.0, -1, 1.0},
  };
  const Runner runner{{"churn-crash", PlatformSpec::lan(), run}};
  const RunRecord rec = runner.run();
  ASSERT_TRUE(rec.reference.has_value());
  ASSERT_TRUE(rec.predicted.has_value());
  ASSERT_TRUE(rec.reference->churn.has_value());
  ASSERT_TRUE(rec.predicted->churn.has_value());
  // The crash aborted the first submission; the replacement peer joined and
  // the re-allocation finished the obstacle computation.
  EXPECT_EQ(rec.reference->churn->attempts, 2);
  EXPECT_EQ(rec.reference->churn->stats.peer_crashes, 1);
  EXPECT_EQ(rec.reference->churn->stats.peer_joins, 1);
  EXPECT_GT(rec.reference->solve_seconds, 0);
  // Identical expanded event stream in the prediction phase.
  EXPECT_EQ(rec.predicted->churn->stats.peer_crashes,
            rec.reference->churn->stats.peer_crashes);
  EXPECT_EQ(rec.predicted->churn->attempts, rec.reference->churn->attempts);
  ASSERT_TRUE(rec.prediction_error.has_value());
  EXPECT_LT(*rec.prediction_error, 0.05);
}

TEST(ChurnRunner, TrackerCrashFailsOverAndIsObserved) {
  RunSpec run = smoke_run(4);
  run.mode = Mode::Reference;
  // Crash the *primary* tracker during bootstrap: its zone peers must
  // re-join the failover trackers before the computation even starts.
  run.churn.events = {{churn::ChurnEvent::Kind::TrackerCrash, 2.0, 0, 1.0}};
  const RunRecord rec = Runner{{"churn-tracker", PlatformSpec::lan(), run}}.run();
  ASSERT_TRUE(rec.reference.has_value());
  ASSERT_TRUE(rec.reference->churn.has_value());
  EXPECT_EQ(rec.reference->churn->stats.tracker_crashes, 1);
  EXPECT_GT(rec.reference->churn->rejoins, 0);
  EXPECT_GT(rec.reference->solve_seconds, 0);
}

TEST(ChurnRunner, ExhaustedAttemptsYieldStructuredErrorRecord) {
  RunSpec run = smoke_run(4);
  run.mode = Mode::Reference;
  run.churn.max_attempts = 1;  // no retry budget
  run.churn.events = {{churn::ChurnEvent::Kind::PeerCrash, kWarmup + 0.05, 1, 1.0}};
  const Runner runner{{"churn-fatal", PlatformSpec::lan(), run}};
  const RunRecord rec = runner.try_run();
  // A churn-induced mid-run failure is a record, not a dead worker.
  EXPECT_FALSE(rec.ok());
  EXPECT_NE(rec.error.find("[reference]"), std::string::npos) << rec.error;
  EXPECT_NE(rec.error.find("crashed"), std::string::npos) << rec.error;
  // The record still parses and carries its identity.
  const JsonValue doc = parse_json(rec.to_json());
  EXPECT_EQ(doc.at("scenario").as_string(), "churn-fatal");
  EXPECT_TRUE(doc.has("error"));
}

TEST(ChurnRunner, RecordJsonCarriesChurnBlock) {
  RunSpec run = smoke_run(3);
  run.mode = Mode::Reference;
  run.churn.events = {
      {churn::ChurnEvent::Kind::LinkDegrade, 1.0, 0, 0.5},
      {churn::ChurnEvent::Kind::LinkRestore, kWarmup + 0.01, 0, 1.0},
  };
  const RunRecord rec = Runner{{"churn-json", PlatformSpec::lan(), run}}.run();
  const JsonValue doc = parse_json(rec.to_json());
  const JsonValue& churn = doc.at("reference").at("churn");
  EXPECT_EQ(churn.at("link_degrades").as_double(), 1.0);
  EXPECT_EQ(churn.at("link_restores").as_double(), 1.0);
  EXPECT_EQ(churn.at("attempts").as_double(), 1.0);
  EXPECT_EQ(doc.at("reference").at("flownet").at("link_rescales").as_double(), 2.0);
  // The canonical spec text embeds the churn block, so campaign resume
  // invalidates records when any churn parameter changes.
  EXPECT_NE(doc.at("spec").as_string().find("churn event degrade"), std::string::npos);
}

}  // namespace
}  // namespace pdc::scenario

namespace pdc::campaign {
namespace {

// Acceptance gate for the churn subsystem: a campaign sweeping churn rate
// over >= 3 grid points runs to completion at -j1 and -j4 with field-by-field
// identical records; crashed-peer runs complete or record structured errors.
TEST(ChurnCampaign, ChurnRateSweepIsDeterministicAcrossJobs) {
  CampaignSpec spec;
  spec.name = "churn-det";
  spec.base.name = "churn-det";
  spec.base.platform = scenario::PlatformSpec::lan();
  spec.base.run = scenario::RunSpec{};
  spec.base.run.mode = scenario::Mode::Both;
  spec.base.run.grid_n = 34;
  spec.base.run.iters = 6;
  spec.base.run.bench_n = 18;
  spec.base.run.bench_iters = 3;
  spec.base.run.bench_rcheck = 2;
  spec.base.run.peers = 3;
  spec.base.run.churn.mean_downtime = 4;
  spec.base.run.churn.horizon = 14;  // faults land in bootstrap + early solve
  spec.churn_rates = {0.0, 0.01, 0.05};
  spec.churn_seeds = {1, 2};
  spec.repetitions = 1;  // 3 x 2 = 6 runs

  ExecutorOptions sequential;
  sequential.jobs = 1;
  Executor j1{spec, sequential};
  const CampaignReport r1 = j1.execute();

  ExecutorOptions parallel;
  parallel.jobs = 4;
  Executor j4{spec, parallel};
  const CampaignReport r4 = j4.execute();

  ASSERT_EQ(j1.outcomes().size(), 6u);
  ASSERT_EQ(j4.outcomes().size(), 6u);
  for (std::size_t i = 0; i < j1.outcomes().size(); ++i) {
    const Outcome& a = j1.outcomes()[i];
    const Outcome& b = j4.outcomes()[i];
    ASSERT_EQ(a.run.key, b.run.key);
    // Swept churn axes appear in the key.
    EXPECT_NE(a.run.key.find("-cr"), std::string::npos);
    EXPECT_NE(a.run.key.find("-cs"), std::string::npos);
    // Every run either completed the computation or recorded a structured
    // error; either way the two -j levels agree bit for bit.
    EXPECT_EQ(a.error, b.error) << a.run.key;
    expect_json_equal(parse_json(a.record_json), parse_json(b.record_json), a.run.key);
    EXPECT_EQ(a.record_json, b.record_json) << a.run.key;
  }
  // The churn-free grid points (rate 0) must all have completed.
  for (const Outcome& out : j1.outcomes())
    if (out.run.key.find("-cr0-") != std::string::npos)
      EXPECT_TRUE(out.ok()) << out.run.key << ": " << out.error;
  EXPECT_EQ(r1.points.size(), r4.points.size());
  EXPECT_EQ(r1.points.size(), 6u);
}

}  // namespace
}  // namespace pdc::campaign
