// dPerf walkthrough: take the MiniC obstacle kernel, run the full pipeline
// (instrument -> block benchmark -> traces -> trace-based simulation), and
// predict how the same program would perform on different platform
// descriptions -- the paper's core use case of "properly choosing a peer to
// peer computing system which can match the computing power of a cluster".
//
//   $ ./predict_topologies [platform-file]
//
// The predictions are driven as declarative scenarios (scenario::Runner);
// with a platform-file argument the same traces additionally replay on your
// own topology via PlatformSpec::from_file.
#include <cstdio>

#include "obstacle/minic_kernel.hpp"
#include "scenario/runner.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace pdc;
  scenario::RunSpec run;
  run.grid_n = 514;  // laptop-friendly demo size
  run.iters = 200;
  run.peers = 4;
  run.level = ir::OptLevel::O2;
  run.mode = scenario::Mode::Predict;

  // The dPerf pipeline, step by step (this is what Runner::traces() wraps).
  dperf::DperfOptions opt;
  opt.level = run.level;
  opt.chunk = run.rcheck;
  opt.sample_iters = 3 * run.rcheck;
  const dperf::Dperf pipeline{obstacle::minic_kernel_source(), opt};

  std::printf("== dPerf static analysis ==\n");
  std::printf("instrumented %zu blocks, %d communication loop(s) marked\n",
              pipeline.instrumented().blocks.size(), pipeline.instrumented().iter_loops);

  obstacle::ObstacleProblem problem;
  problem.n = run.grid_n;
  problem.omega = run.omega;
  obstacle::ObstacleProblem bench = problem;
  bench.n = run.bench_n;
  const dperf::BlockTimings timings = pipeline.benchmark(
      obstacle::kernel_workload(bench, run.bench_iters, run.bench_rcheck));
  std::printf("block benchmark (%s): one-off %.1f us, per-iteration %.1f us\n\n",
              ir::opt_level_name(run.level), timings.once_ns() / 1e3,
              timings.per_iteration_ns() / 1e3);

  std::printf("== trace generation (sampled %d of %d iterations, scaled up) ==\n",
              opt.sample_iters, run.iters);
  const auto traces =
      scenario::Runner{{"walkthrough", scenario::PlatformSpec::grid5000(), run}}.traces();
  for (const auto& t : traces)
    std::printf("rank %d: %zu events, %.2f s compute, %zu sends\n", t.rank,
                t.events.size(), t.total_compute_ns() / 1e9,
                t.count(dperf::TraceEvent::Kind::Send));

  std::printf("\n== trace-based simulation on each platform description ==\n");
  std::vector<scenario::PlatformSpec> platforms{scenario::PlatformSpec::grid5000(),
                                                scenario::PlatformSpec::lan(),
                                                scenario::PlatformSpec::xdsl()};
  if (argc > 1) platforms.push_back(scenario::PlatformSpec::from_file(argv[1]));

  TextTable table({"Platform", "predicted solve [s]"});
  for (const auto& platform : platforms) {
    try {
      const scenario::Runner runner{{platform.label, platform, run}};
      table.add_row({platform.label,
                     TextTable::num(runner.run_predicted(traces).solve_seconds, 2)});
    } catch (const std::exception& e) {
      std::printf("platform '%s' failed: %s\n", platform.label.c_str(), e.what());
      return 1;
    }
  }

  std::printf("%s\n", table.render().c_str());
  std::printf("the prediction needed only ONE instrumented sample run per rank --\n"
              "that is dPerf's 'reduced slowdown due to block benchmarking'.\n");
  return 0;
}
