// Plain-text table rendering for the experiment harness: the figure/table
// benches print rows in the same layout as the paper's figures.
#pragma once

#include <string>
#include <vector>

namespace pdc {

/// Accumulates rows of string cells and renders an aligned ASCII table.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 2);

  /// Renders with column alignment and a header separator.
  std::string render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pdc
