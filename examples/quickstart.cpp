// Quickstart: boot a P2PDC deployment on a small simulated cluster, submit
// the obstacle problem to 4 peers, and check the solution against the
// sequential solver.
//
//   $ ./quickstart
#include <cstdio>

#include "net/builders.hpp"
#include "obstacle/distributed.hpp"
#include "p2pdc/environment.hpp"

int main() {
  using namespace pdc;

  // 1. A simulated platform: 7 hosts on a Grid'5000-like cluster
  //    (1 Gbps NICs, 10 Gbps backbone, 3 GHz nodes).
  sim::Engine engine;
  const net::Platform platform = net::build_star(net::bordeplage_cluster_spec(7));

  // 2. The P2PDC environment: a bootstrap server, one core tracker, one
  //    submitter peer and four worker peers join the overlay.
  p2pdc::Environment env{engine, platform};
  env.boot_server(platform.host(0));
  env.boot_tracker(platform.host(1), /*core=*/true);
  const net::NodeIdx submitter = platform.host(2);
  for (int i = 2; i < 7; ++i)
    env.boot_peer(platform.host(i), overlay::PeerResources{3e9, 2e9, 80e9});
  env.finish_bootstrap();

  // 3. Solve the obstacle problem on 4 peers with real values and early
  //    stopping on the reduced residual.
  obstacle::DistributedConfig cfg;
  cfg.problem.n = 66;
  cfg.iters = 20000;
  cfg.rcheck = 25;
  cfg.mode = obstacle::ValueMode::Real;
  cfg.early_stop = true;
  cfg.tol = 1e-7;
  cfg.cost = obstacle::derive_cost_profile(ir::OptLevel::O2, [&] {
    obstacle::ObstacleProblem bench = cfg.problem;
    bench.n = 34;
    return bench;
  }());

  const obstacle::SolveReport report =
      obstacle::run_distributed(env, submitter, cfg, /*peers=*/4);
  if (!report.ok) {
    std::printf("computation failed: %s\n", report.failure.c_str());
    return 1;
  }

  std::printf("obstacle problem %dx%d solved on 4 peers\n", cfg.problem.n, cfg.problem.n);
  std::printf("  iterations          : %d (early stop at residual %.2e)\n",
              report.iterations, report.residual);
  std::printf("  simulated solve time: %.3f s\n", report.solve_seconds);
  std::printf("  collection/alloc    : %.3f s / %.3f s\n",
              report.computation.collection_time(), report.computation.allocation_time());

  // 4. Validate against the sequential solver.
  const obstacle::SequentialResult seq = obstacle::solve_sequential(cfg.problem, 20000, 1e-7);
  double worst = 0;
  for (int i = 1; i < cfg.problem.n - 1; ++i)
    for (int j = 1; j < cfg.problem.n - 1; ++j)
      worst = std::max(worst,
                       std::abs(report.solution.at(i, j) - seq.solution.at(i, j)));
  std::printf("  vs sequential solver: max |diff| = %.2e (%d iterations)\n", worst,
              seq.iterations);
  std::printf("  obstacle violation  : %.2e (must be ~0: u >= psi everywhere)\n",
              obstacle::obstacle_violation(cfg.problem, report.solution));
  return worst < 1e-6 ? 0 : 1;
}
