#include "experiments/harness.hpp"

#include <cstdlib>
#include <map>

#include "obstacle/minic_kernel.hpp"
#include "support/rng.hpp"

namespace pdc::experiments {

obstacle::ObstacleProblem PaperSetup::problem() const {
  obstacle::ObstacleProblem p;
  p.n = grid_n;
  p.omega = omega;
  return p;
}

obstacle::ObstacleProblem PaperSetup::bench_problem() const {
  obstacle::ObstacleProblem p;
  p.n = bench_n;
  p.omega = omega;
  return p;
}

PaperSetup PaperSetup::from_env() {
  PaperSetup s;
  const char* quick = std::getenv("PDC_QUICK");
  if (quick != nullptr && quick[0] != '\0' && quick[0] != '0') {
    s.grid_n = 258;
    s.iters = 100;
  }
  return s;
}

const char* topology_name(Topology t) {
  switch (t) {
    case Topology::Grid5000: return "Grid5000";
    case Topology::Lan: return "LAN";
    case Topology::Xdsl: return "xDSL";
  }
  return "?";
}

const std::vector<int>& paper_peer_counts() {
  static const std::vector<int> kCounts{2, 4, 8, 16, 32};
  return kCounts;
}

std::unique_ptr<Deployment> deploy(Topology topo, int workers) {
  auto d = std::make_unique<Deployment>();
  overlay::PeerResources res{3e9, 2e9, 80e9};  // Xeon EM64T 3 GHz nodes

  if (topo == Topology::Xdsl) {
    net::DaisySpec spec;
    Rng rng{42};
    d->platform = net::build_daisy(spec, rng);
    const int hosts = d->platform.host_count();  // 1024
    // Server and one tracker per petal (administrator cores, §III-A.3),
    // placed at petal boundaries; submitter next to the server.
    d->env = std::make_unique<p2pdc::Environment>(d->engine, d->platform);
    d->env->boot_server(d->platform.host(0));
    const int per_petal = hosts / spec.central_routers;
    std::vector<int> used{0};
    for (int p = 0; p < spec.central_routers; ++p) {
      const int idx = p * per_petal + 1;
      d->env->boot_tracker(d->platform.host(idx), /*core=*/true);
      used.push_back(idx);
    }
    const int submitter_idx = 2;
    used.push_back(submitter_idx);
    d->submitter = d->platform.host(submitter_idx);
    d->env->boot_peer(d->submitter, res);
    // Workers: spread across the whole desktop grid, skipping used hosts.
    const int stride = hosts / workers;
    int placed = 0;
    for (int k = 0; placed < workers && k < hosts; ++k) {
      int idx = (3 + k * stride) % hosts;
      while (std::find(used.begin(), used.end(), idx) != used.end()) idx = (idx + 1) % hosts;
      used.push_back(idx);
      const net::NodeIdx h = d->platform.host(idx);
      d->env->boot_peer(h, res);
      d->workers.push_back(h);
      ++placed;
    }
    d->env->finish_bootstrap();
    return d;
  }

  const int hosts = workers + 3;
  d->platform = net::build_star(topo == Topology::Grid5000 ? net::bordeplage_cluster_spec(hosts)
                                                           : net::lan_spec(hosts));
  d->env = std::make_unique<p2pdc::Environment>(d->engine, d->platform);
  d->env->boot_server(d->platform.host(0));
  d->env->boot_tracker(d->platform.host(1), /*core=*/true);
  d->submitter = d->platform.host(2);
  d->env->boot_peer(d->submitter, res);
  for (int i = 3; i < hosts; ++i) {
    const net::NodeIdx h = d->platform.host(i);
    d->env->boot_peer(h, res);
    d->workers.push_back(h);
  }
  d->env->finish_bootstrap();
  return d;
}

const obstacle::CostProfile& cost_profile(ir::OptLevel level, const PaperSetup& setup) {
  static std::map<std::pair<int, int>, obstacle::CostProfile> cache;
  const auto key = std::make_pair(static_cast<int>(level), setup.bench_n);
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache
             .emplace(key, obstacle::derive_cost_profile(level, setup.bench_problem(),
                                                         setup.bench_iters,
                                                         setup.bench_rcheck))
             .first;
  }
  return it->second;
}

double reference_seconds(Topology topo, int peers, ir::OptLevel level,
                         const PaperSetup& setup) {
  auto d = deploy(topo, peers);
  obstacle::DistributedConfig cfg;
  cfg.problem = setup.problem();
  cfg.iters = setup.iters;
  cfg.rcheck = setup.rcheck;
  cfg.mode = obstacle::ValueMode::Phantom;
  cfg.cost = cost_profile(level, setup);
  const obstacle::SolveReport rep = obstacle::run_distributed(*d->env, d->submitter, cfg,
                                                              peers);
  if (!rep.ok) throw std::runtime_error("reference run failed: " + rep.failure);
  return rep.solve_seconds;
}

std::vector<dperf::Trace> traces_for(int peers, ir::OptLevel level, const PaperSetup& setup) {
  dperf::DperfOptions opt;
  opt.level = level;
  opt.chunk = setup.rcheck;
  opt.sample_iters = 3 * setup.rcheck;
  const dperf::Dperf pipeline{obstacle::minic_kernel_source(), opt};
  return pipeline.traces(obstacle::kernel_workload(setup.problem(), setup.iters, setup.rcheck),
                         peers);
}

double predicted_seconds(Topology topo, int peers, ir::OptLevel level,
                         const PaperSetup& setup, std::vector<dperf::Trace> traces) {
  auto d = deploy(topo, peers);
  obstacle::DistributedConfig cfg;
  cfg.problem = setup.problem();
  const dperf::Prediction pred = dperf::replay_on(
      *d->env, d->submitter, obstacle::make_task_spec(cfg, peers), std::move(traces));
  if (!pred.computation.ok)
    throw std::runtime_error("prediction replay failed: " + pred.computation.failure);
  (void)level;
  return pred.solve_seconds;
}

}  // namespace pdc::experiments
