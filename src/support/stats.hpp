// Streaming statistics (Welford) and small summaries used by benchmarking,
// block timing and the experiment harness.
#pragma once

#include <cstddef>
#include <vector>

namespace pdc {

/// Single-pass mean/variance/min/max accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double total() const { return sum_; }

  /// Merges another accumulator into this one (parallel-combine rule).
  void merge(const RunningStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Returns the p-quantile (0 <= p <= 1) with linear interpolation.
/// Sorts a copy; intended for small sample sets.
double quantile(std::vector<double> samples, double p);

/// Aggregate of one metric over a sample set (campaign grid-point
/// aggregation over repetitions). Degenerate inputs are well-defined:
/// n == 0 leaves every field 0; n == 1 has stddev == ci95_half == 0 and
/// min == max == p50 == p95 == mean; constant samples have stddev == 0.
struct Summary {
  std::size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;  // sample stddev (n-1 denominator)
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  /// Half-width of the 95% confidence interval on the mean
  /// (Student-t critical value x stddev / sqrt(n)); 0 for n < 2.
  double ci95_half = 0.0;
};

/// Single-pass + quantile aggregation of `samples`.
Summary summarize(const std::vector<double>& samples);

/// Two-sided 95% Student-t critical value for `df` degrees of freedom
/// (exact table for df <= 30, the normal 1.96 beyond). df == 0 returns 0.
double student_t_95(std::size_t df);

}  // namespace pdc
