// A small text format for platform descriptions, playing the role of the
// SimGrid platform files that dPerf feeds to the MSG module.
//
// Grammar (line oriented, '#' starts a comment):
//
//   host   <name> speed <num><GHz|MHz|Hz> ip <a.b.c.d>
//   router <name>
//   link   <name> bw <num><Gbps|Mbps|Kbps|bps> lat <num><s|ms|us|ns>
//   edge   <nodeA> <nodeB> <link>
//   route  <src> <dst> <hop> [<hop> ...]
//
// `route` installs an explicit symmetric route. Each <hop> is a link name:
// links that appear in `edge` lines must form a connected edge path from
// <src> to <dst> (hop directions are inferred from edge orientation, and a
// malformed path is a parse error); a link with no edges is a *fabric* link
// (e.g. the star builders' shared backbone, crossed by every route without
// being part of the node graph) and takes an optional direction suffix
// `<link>:fwd` / `<link>:rev` (default fwd).
#pragma once

#include <stdexcept>
#include <string>

#include "net/platform.hpp"

namespace pdc::net {

/// Error with 1-based line information.
class PlatFileError : public std::runtime_error {
 public:
  PlatFileError(int line, const std::string& what)
      : std::runtime_error("platform file line " + std::to_string(line) + ": " + what),
        line_(line) {}
  int line() const { return line_; }

 private:
  int line_;
};

/// Parses a platform description from text. Throws PlatFileError.
Platform parse_platform(const std::string& text);

/// Serializes a Platform back to the text format: hosts, routers, links,
/// edges AND explicit routes, so parse(render(p)) reproduces node/link/edge
/// structure and routing. A symmetric route pair becomes one `route` line
/// (re-parsing reinstalls both directions); an asymmetric route installed
/// with set_route(..., symmetric=false) is emitted as its forward line and
/// becomes symmetric on re-parse (the grammar cannot express one-way routes).
std::string render_platform(const Platform& p);

/// Unit-suffixed value parsers shared with the scenario spec format.
/// Throw std::invalid_argument on malformed input.
double parse_speed_value(const std::string& text);      // "3GHz"   -> 3e9 Hz
double parse_bandwidth_value(const std::string& text);  // "1Gbps"  -> 1.25e8 B/s
double parse_latency_value(const std::string& text);    // "100us"  -> 1e-4 s

}  // namespace pdc::net
