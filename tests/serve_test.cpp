// Prediction-as-a-service: memo-cache semantics (LRU under a byte budget),
// wire-protocol framing, and the full daemon round trip — the second
// request for one scenario must be a cache hit, byte-identical, and far
// cheaper than the first (the warm/cold split the serve layer exists for).
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>

#include "serve/cache.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/stats.hpp"
#include "support/json.hpp"
#include "support/socket.hpp"

namespace pdc::serve {
namespace {

namespace fs = std::filesystem;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

TEST(MemoCache, CountsHitsAndMisses) {
  MemoCache cache{1 << 20};
  EXPECT_FALSE(cache.get("a").has_value());
  cache.put("a", "alpha");
  auto hit = cache.get("a");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "alpha");
  const CacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.entries, 1u);
  EXPECT_EQ(s.insertions, 1u);
  EXPECT_EQ(s.bytes, std::string("a").size() + std::string("alpha").size());
}

TEST(MemoCache, EvictsLeastRecentlyUsedUnderByteBudget) {
  // Each entry charges key (1) + value (10) = 11 bytes; budget fits two.
  MemoCache cache{22};
  const std::string ten(10, 'x');
  cache.put("a", ten);
  cache.put("b", ten);
  ASSERT_TRUE(cache.get("a").has_value());  // refresh a: b is now LRU
  cache.put("c", ten);                      // evicts b
  EXPECT_TRUE(cache.get("a").has_value());
  EXPECT_FALSE(cache.get("b").has_value());
  EXPECT_TRUE(cache.get("c").has_value());
  const CacheStats s = cache.stats();
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.entries, 2u);
  EXPECT_LE(s.bytes, s.budget_bytes);
}

TEST(MemoCache, ReplacingAKeyAdjustsBytes) {
  MemoCache cache{1 << 20};
  cache.put("k", "short");
  cache.put("k", std::string(100, 'y'));
  const CacheStats s = cache.stats();
  EXPECT_EQ(s.entries, 1u);
  EXPECT_EQ(s.bytes, 1u + 100u);
  EXPECT_EQ(cache.get("k")->size(), 100u);
}

TEST(MemoCache, OversizedEntriesAreNotCachedAndEvictNothing) {
  MemoCache cache{32};
  cache.put("keep", "1234");
  cache.put("huge", std::string(1000, 'z'));  // bigger than the whole budget
  EXPECT_TRUE(cache.get("keep").has_value());
  EXPECT_FALSE(cache.get("huge").has_value());
  EXPECT_EQ(cache.stats().entries, 1u);
}

// Regression: replacing a resident key with a value bigger than the whole
// budget used to leave the oversized entry resident and let the eviction
// loop drain every other entry trying to make room. The replacement must
// simply drop the key (the header's oversized-entry promise) and leave the
// rest of the working set alone.
TEST(MemoCache, OversizedReplacementDropsKeyAndKeepsWorkingSet) {
  MemoCache cache{32};
  cache.put("keep", "1234");          // 8 bytes
  cache.put("k", "v");                // 2 bytes
  cache.put("k", std::string(100, 'z'));  // oversized replacement
  EXPECT_FALSE(cache.get("k").has_value());
  EXPECT_TRUE(cache.get("keep").has_value());
  const CacheStats s = cache.stats();
  EXPECT_EQ(s.entries, 1u);
  EXPECT_EQ(s.bytes, std::string("keep").size() + std::string("1234").size());
}

// The bytes counter must equal the byte footprint of the live entries after
// any interleaving of inserts, replacements, oversized puts and evictions —
// checked here across every transition the cache implements.
TEST(MemoCache, BytesMatchLiveEntriesThroughAllTransitions) {
  MemoCache cache{40};
  const auto live_bytes = [&cache](std::initializer_list<const char*> keys) {
    std::size_t total = 0;
    for (const char* k : keys) {
      const auto v = cache.get(k);
      if (v.has_value()) total += std::string(k).size() + v->size();
    }
    return total;
  };
  cache.put("a", "12345");  // 6
  cache.put("b", "12345");  // 6
  EXPECT_EQ(cache.stats().bytes, live_bytes({"a", "b"}));
  cache.put("a", std::string(12, 'x'));  // in-place growth
  EXPECT_EQ(cache.stats().bytes, live_bytes({"a", "b"}));
  cache.put("a", "1");  // in-place shrink
  EXPECT_EQ(cache.stats().bytes, live_bytes({"a", "b"}));
  cache.put("c", std::string(34, 'y'));  // forces LRU eviction
  EXPECT_EQ(cache.stats().bytes, live_bytes({"a", "b", "c"}));
  cache.put("d", std::string(64, 'z'));  // oversized insert: not cached
  EXPECT_EQ(cache.stats().bytes, live_bytes({"a", "b", "c", "d"}));
  cache.put("c", std::string(64, 'w'));  // oversized replacement: drops c
  EXPECT_EQ(cache.stats().bytes, live_bytes({"a", "b", "c", "d"}));
  EXPECT_LE(cache.stats().bytes, cache.stats().budget_bytes);
}

TEST(MemoCache, ZeroBudgetDisablesCaching) {
  MemoCache cache{0};
  cache.put("a", "b");
  EXPECT_FALSE(cache.get("a").has_value());
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(Protocol, RoundTripsRequestsAndResponses) {
  Socket listener = listen_tcp(0);
  const int port = bound_tcp_port(listener);
  Socket client = connect_tcp("127.0.0.1", port);
  std::optional<Socket> server = accept_ready(listener, Socket{}, 1.0);
  ASSERT_TRUE(server.has_value());

  Request req{RequestKind::RunScenario, "scenario x\npeers 2\n"};
  write_request(client, req);
  Request got;
  ASSERT_TRUE(read_request(*server, got));
  EXPECT_EQ(got.kind, RequestKind::RunScenario);
  EXPECT_EQ(got.body, req.body);

  write_response(*server, Response{true, "miss", "{\"answer\": 42}"});
  const Response resp = read_response(client);
  EXPECT_TRUE(resp.ok);
  EXPECT_EQ(resp.tag, "miss");
  EXPECT_EQ(resp.body, "{\"answer\": 42}");
}

TEST(Protocol, BodylessKindsAndErrors) {
  Socket listener = listen_tcp(0);
  Socket client = connect_tcp("127.0.0.1", bound_tcp_port(listener));
  std::optional<Socket> server = accept_ready(listener, Socket{}, 1.0);
  ASSERT_TRUE(server.has_value());

  write_request(client, Request{RequestKind::Stats, ""});
  Request got;
  ASSERT_TRUE(read_request(*server, got));
  EXPECT_EQ(got.kind, RequestKind::Stats);
  EXPECT_TRUE(got.body.empty());

  write_response(*server, Response{false, "", "bad spec"});
  const Response resp = read_response(client);
  EXPECT_FALSE(resp.ok);
  EXPECT_EQ(resp.body, "bad spec");
}

TEST(Protocol, RejectsOversizedBodies) {
  Socket listener = listen_tcp(0);
  Socket client = connect_tcp("127.0.0.1", bound_tcp_port(listener));
  std::optional<Socket> server = accept_ready(listener, Socket{}, 1.0);
  ASSERT_TRUE(server.has_value());
  client.write_all("RUN scn 999999999999\n");
  Request got;
  EXPECT_THROW(read_request(*server, got), std::runtime_error);
}

/// A scenario whose cold path exercises the expensive machinery the daemon
/// keeps warm — dPerf block benchmark, trace sampling, reference run and
/// replay (`mode both`) — yet stays quick enough for a unit test.
const char* kServedScenario =
    "scenario served\n"
    "platform lan\n"
    "peers 2\n"
    "mode both\n"
    "grid 64\n"
    "iters 12\n"
    "bench 18 3 2\n";

struct TestServer {
  ServerOptions opts;
  Server* server = nullptr;
  std::thread thread;

  explicit TestServer(ServerOptions o) : opts(std::move(o)) {
    server = new Server{opts};
    thread = std::thread([this] { server->run(); });
  }
  ~TestServer() {
    server->request_stop();
    thread.join();
    delete server;
  }
};

Response roundtrip(int port, const Request& req) {
  Socket conn = connect_tcp("127.0.0.1", port);
  write_request(conn, req);
  return read_response(conn);
}

TEST(Serve, SecondRequestIsAByteIdenticalCacheHitAndMuchFaster) {
  ServerOptions opts;
  opts.tcp_port = 0;
  TestServer ts{opts};
  const int port = ts.server->port();
  ASSERT_GT(port, 0);

  const Request run{RequestKind::RunScenario, kServedScenario};

  const auto t_cold = std::chrono::steady_clock::now();
  const Response cold = roundtrip(port, run);
  const double cold_s = seconds_since(t_cold);
  ASSERT_TRUE(cold.ok) << cold.body;
  EXPECT_EQ(cold.tag, "miss");

  const auto t_warm = std::chrono::steady_clock::now();
  const Response warm = roundtrip(port, run);
  const double warm_s = seconds_since(t_warm);
  ASSERT_TRUE(warm.ok) << warm.body;
  EXPECT_EQ(warm.tag, "hit");

  // The entire point of the resident daemon: the memoized answer is the
  // same bytes, for orders of magnitude less work.
  EXPECT_EQ(warm.body, cold.body);
  EXPECT_GE(cold_s / warm_s, 50.0)
      << "cold=" << cold_s << "s warm=" << warm_s << "s";

  // A textual variant of the same scenario (comments, reordered lines)
  // lands on the same canonical cache entry.
  const Response variant = roundtrip(
      port, Request{RequestKind::RunScenario,
                    "# same thing, different text\nscenario served\n"
                    "platform lan\nmode both\nbench 18 3 2\n"
                    "iters 12\ngrid 64\npeers 2\n"});
  EXPECT_EQ(variant.tag, "hit");
  EXPECT_EQ(variant.body, cold.body);

  const Response stats = roundtrip(port, Request{RequestKind::Stats, ""});
  ASSERT_TRUE(stats.ok);
  const JsonValue doc = parse_json(stats.body);
  EXPECT_EQ(doc.at("scenario_requests").as_double(), 3.0);
  EXPECT_EQ(doc.at("cache").at("hits").as_double(), 2.0);
  EXPECT_EQ(doc.at("cache").at("misses").as_double(), 1.0);
  EXPECT_GE(doc.at("memos").at("trace_sets").as_double(), 0.0);
}

TEST(Serve, BadSpecsAreErrorsNotCrashes) {
  ServerOptions opts;
  opts.tcp_port = 0;
  TestServer ts{opts};
  const Response resp = roundtrip(ts.server->port(),
                                  Request{RequestKind::RunScenario, "peers banana\n"});
  EXPECT_FALSE(resp.ok);
  EXPECT_FALSE(resp.body.empty());
  const Response stats = roundtrip(ts.server->port(), Request{RequestKind::Stats, ""});
  EXPECT_EQ(parse_json(stats.body).at("errors").as_double(), 1.0);
}

TEST(Serve, CampaignRequestsShareTheScenarioCache) {
  ServerOptions opts;
  opts.tcp_port = 0;
  TestServer ts{opts};
  const int port = ts.server->port();
  const char* campaign =
      "campaign mini\n"
      "platform lan\n"
      "mode reference\n"
      "grid 34\niters 6\nbench 18 3 2\n"
      "sweep peers 2,3\n";
  const Response first = roundtrip(port, Request{RequestKind::RunCampaign, campaign});
  ASSERT_TRUE(first.ok) << first.body;
  EXPECT_EQ(first.tag, "miss");
  const Response second = roundtrip(port, Request{RequestKind::RunCampaign, campaign});
  ASSERT_TRUE(second.ok);
  EXPECT_EQ(second.tag, "hit");  // every cell came from the memo
  EXPECT_EQ(second.body, first.body);
  // The campaign warmed the per-scenario cache: report has both points.
  const JsonValue doc = parse_json(first.body);
  EXPECT_EQ(doc.at("points").as_array().size(), 2u);
  // Canonical report: no session fields.
  EXPECT_FALSE(doc.has("wall_seconds"));
}

TEST(Serve, SpoolRoundTripAndFinalStats) {
  const fs::path root = fs::path("serve_test_out");
  fs::remove_all(root);
  fs::create_directories(root / "spool");
  const std::string stats_path = (root / "final_stats.json").string();
  {
    ServerOptions opts;
    opts.spool_dir = (root / "spool").string();
    opts.stats_path = stats_path;
    opts.poll_seconds = 0.05;
    TestServer ts{opts};
    {
      std::ofstream job(root / "spool" / "job.scn.part");
      job << "scenario spooled\nplatform lan\npeers 2\nmode reference\n"
             "grid 34\niters 6\nbench 18 3 2\n";
    }
    // Rename into place so the scanner never sees a half-written file.
    fs::rename(root / "spool" / "job.scn.part", root / "spool" / "job.scn");
    const fs::path answer = root / "spool" / "out" / "job.json";
    const auto t0 = std::chrono::steady_clock::now();
    while (!fs::exists(answer) && seconds_since(t0) < 30.0)
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    ASSERT_TRUE(fs::exists(answer));
    std::ifstream in(answer);
    std::string body((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    const JsonValue doc = parse_json(body);
    EXPECT_EQ(doc.at("scenario").as_string(), "spooled");
    EXPECT_FALSE(fs::exists(root / "spool" / "job.scn"));       // consumed
    EXPECT_FALSE(fs::exists(root / "spool" / "work" / "job.scn"));
  }  // ~TestServer: graceful stop, drains, writes final stats
  std::ifstream in(stats_path);
  ASSERT_TRUE(in.good());
  std::string body((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  const JsonValue doc = parse_json(body);
  EXPECT_EQ(doc.at("spool_jobs").as_double(), 1.0);
  EXPECT_EQ(doc.at("in_flight").as_double(), 0.0);
  fs::remove_all(root);
}

}  // namespace
}  // namespace pdc::serve
