// Drives a churn timeline into a live deployment: events are scheduled on
// the simulation engine's timer queue, so they interleave deterministically
// with the overlay protocols and the computation itself.
//
//  * crash-peer     -> p2pdc::Environment::crash_host on a worker: the
//                      overlay actor fail-stops (messages dropped, resources
//                      expire from its zone) and any computation that placed
//                      a rank there aborts so the submitter can re-allocate.
//  * join           -> boots a fresh peer on the next spare host through the
//                      ordinary overlay join protocol (replacement capacity).
//  * crash-tracker  -> fail-stops a failover tracker; neighbours repair the
//                      line and orphaned peers re-join a neighbour zone
//                      (PeerActor::rejoin_count observes it).
//  * degrade/restore-> FlowNet::set_link_scale on a platform link, reshaping
//                      every affected flow in either sharing mode.
//
// The injector never crashes the submitter or the last alive tracker (a
// skipped event is counted, not applied): the paper's volatility model is
// peer churn around a task that must remain submittable.
#pragma once

#include <deque>
#include <vector>

#include "churn/spec.hpp"
#include "p2pdc/environment.hpp"
#include "support/rng.hpp"

namespace pdc::churn {

class Injector {
 public:
  /// `workers` are the crash-eligible hosts (never the submitter),
  /// `crashable_trackers` the failover trackers booted for this run, and
  /// `spare_hosts` pre-sized, not-yet-booted hosts that join events consume
  /// in order. `seed` feeds the target=-1 picks (see injection_seed).
  Injector(p2pdc::Environment& env, std::vector<net::NodeIdx> workers,
           std::vector<net::NodeIdx> crashable_trackers,
           std::vector<net::NodeIdx> spare_hosts, std::vector<ChurnEvent> timeline,
           std::uint64_t seed);

  /// Schedules every timeline event at (now + event.at). Call once, after
  /// the deployment finished bootstrapping.
  void arm();

  const ChurnStats& stats() const { return stats_; }

 private:
  void apply(const ChurnEvent& ev);
  void crash_peer(const ChurnEvent& ev);
  void join_peer();
  void crash_tracker(const ChurnEvent& ev);
  void degrade_link(const ChurnEvent& ev);
  void restore_link(const ChurnEvent& ev);

  p2pdc::Environment* env_;
  std::vector<net::NodeIdx> workers_;
  std::vector<net::NodeIdx> crashable_trackers_;
  std::vector<net::NodeIdx> spare_hosts_;
  std::vector<ChurnEvent> timeline_;
  Rng rng_;
  std::size_t next_spare_ = 0;
  std::deque<net::LinkIdx> degraded_;  // FIFO for target=-1 restores
  ChurnStats stats_;
};

}  // namespace pdc::churn
