// Quickstart: deploy a P2PDC overlay from a declarative PlatformSpec,
// submit the obstacle problem to 4 peers, and check the solution against
// the sequential solver.
//
//   $ ./quickstart
#include <cstdio>

#include "obstacle/distributed.hpp"
#include "scenario/runner.hpp"

int main() {
  using namespace pdc;

  // 1. A declarative platform + run: 7 hosts on a Grid'5000-like cluster
  //    (1 Gbps NICs, 10 Gbps backbone, 3 GHz nodes), 4 worker peers. The
  //    scenario deployment boots server, core tracker, submitter and
  //    workers in one call.
  scenario::RunSpec run;
  run.peers = 4;
  auto d = scenario::deploy(scenario::PlatformSpec::grid5000(), run);

  // 2. Solve the obstacle problem on 4 peers with real values and early
  //    stopping on the reduced residual. (Real-value solves live below the
  //    scenario Runner, which drives the paper's Phantom/trace modes.)
  obstacle::DistributedConfig cfg;
  cfg.problem.n = 66;
  cfg.iters = 20000;
  cfg.rcheck = 25;
  cfg.mode = obstacle::ValueMode::Real;
  cfg.early_stop = true;
  cfg.tol = 1e-7;
  cfg.cost = obstacle::derive_cost_profile(ir::OptLevel::O2, [&] {
    obstacle::ObstacleProblem bench = cfg.problem;
    bench.n = 34;
    return bench;
  }());

  const obstacle::SolveReport report =
      obstacle::run_distributed(*d->env, d->submitter, cfg, /*peers=*/4);
  if (!report.ok) {
    std::printf("computation failed: %s\n", report.failure.c_str());
    return 1;
  }

  std::printf("obstacle problem %dx%d solved on 4 peers\n", cfg.problem.n, cfg.problem.n);
  std::printf("  iterations          : %d (early stop at residual %.2e)\n",
              report.iterations, report.residual);
  std::printf("  simulated solve time: %.3f s\n", report.solve_seconds);
  std::printf("  collection/alloc    : %.3f s / %.3f s\n",
              report.computation.collection_time(), report.computation.allocation_time());

  // 3. Validate against the sequential solver.
  const obstacle::SequentialResult seq = obstacle::solve_sequential(cfg.problem, 20000, 1e-7);
  double worst = 0;
  for (int i = 1; i < cfg.problem.n - 1; ++i)
    for (int j = 1; j < cfg.problem.n - 1; ++j)
      worst = std::max(worst,
                       std::abs(report.solution.at(i, j) - seq.solution.at(i, j)));
  std::printf("  vs sequential solver: max |diff| = %.2e (%d iterations)\n", worst,
              seq.iterations);
  std::printf("  obstacle violation  : %.2e (must be ~0: u >= psi everywhere)\n",
              obstacle::obstacle_violation(cfg.problem, report.solution));
  return worst < 1e-6 ? 0 : 1;
}
