// Compiler + VM tests: lowering correctness, each optimization pass, the
// O0..O3/Os pipelines and the cycle/vPAPI accounting.
#include <gtest/gtest.h>

#include "ir/ast_opt.hpp"
#include "ir/pipeline.hpp"
#include "minic/parser.hpp"
#include "minic/token.hpp"
#include "vm/vm.hpp"

namespace pdc {
namespace {

using ir::OptLevel;

long long run_int(const std::string& src, OptLevel lvl = OptLevel::O0) {
  const ir::IrProgram prog = ir::compile_source(src, lvl);
  vm::Vm m{prog};
  return m.run_main();
}

double run_cycles(const std::string& src, OptLevel lvl) {
  const ir::IrProgram prog = ir::compile_source(src, lvl);
  vm::Vm m{prog};
  m.run_main();
  return m.cycles();
}

TEST(Vm, ArithmeticAndControlFlow) {
  EXPECT_EQ(run_int("int main() { return 2 + 3 * 4; }"), 14);
  EXPECT_EQ(run_int("int main() { return (2 + 3) * 4; }"), 20);
  EXPECT_EQ(run_int("int main() { return 17 % 5; }"), 2);
  EXPECT_EQ(run_int("int main() { return -7 / 2; }"), -3);
  EXPECT_EQ(run_int("int main() { if (3 < 4) { return 1; } return 0; }"), 1);
  EXPECT_EQ(run_int("int main() { int s = 0; for (int i = 0; i < 10; i = i + 1) { s = s + i; } return s; }"),
            45);
  EXPECT_EQ(run_int("int main() { int i = 0; while (i * i < 50) { i = i + 1; } return i; }"), 8);
}

TEST(Vm, DoubleMathAndBuiltins) {
  EXPECT_EQ(run_int("int main() { double d = sqrt(16.0); if (d == 4.0) { return 1; } return 0; }"), 1);
  EXPECT_EQ(run_int("int main() { double d = fmax(1.5, fmin(9.0, 2.5)); if (d == 2.5) { return 1; } return 0; }"), 1);
  EXPECT_EQ(run_int("int main() { double d = fabs(0.0 - 3.5); if (d == 3.5) { return 1; } return 0; }"), 1);
  // int -> double promotion.
  EXPECT_EQ(run_int("int main() { double d = 1; d = d / 2; if (d == 0.5) { return 1; } return 0; }"), 1);
}

TEST(Vm, ShortCircuitSemantics) {
  // The rhs would divide by zero; && must skip it.
  EXPECT_EQ(run_int("int main() { int z = 0; if (z != 0 && 10 / z > 0) { return 1; } return 2; }"), 2);
  EXPECT_EQ(run_int("int main() { int z = 0; if (z == 0 || 10 / z > 0) { return 3; } return 4; }"), 3);
}

TEST(Vm, ArraysAndFunctions) {
  const char* src = R"(
double sum(double a[], int n) {
  double s = 0.0;
  for (int i = 0; i < n; i = i + 1) { s = s + a[i]; }
  return s;
}
int main() {
  double a[10];
  for (int i = 0; i < 10; i = i + 1) { a[i] = 1.0 * i; }
  if (sum(a, 10) == 45.0) { return 1; }
  return 0;
}
)";
  EXPECT_EQ(run_int(src), 1);
}

TEST(Vm, ArraysPassByReference) {
  const char* src = R"(
void fill(double a[], int n, double v) {
  for (int i = 0; i < n; i = i + 1) { a[i] = v; }
}
int main() {
  double a[4];
  fill(a, 4, 7.0);
  if (a[3] == 7.0) { return 1; }
  return 0;
}
)";
  EXPECT_EQ(run_int(src), 1);
}

TEST(Vm, Recursion) {
  const char* src = R"(
int fib(int n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); }
int main() { return fib(12); }
)";
  EXPECT_EQ(run_int(src), 144);
}

TEST(Vm, TrapsOnOutOfBounds) {
  EXPECT_THROW(run_int("int main() { double a[3]; a[3] = 1.0; return 0; }"), vm::TrapError);
  EXPECT_THROW(run_int("int main() { double a[3]; double x = a[0-1]; return 0; }"), vm::TrapError);
}

TEST(Vm, TrapsOnDivisionByZero) {
  EXPECT_THROW(run_int("int main() { int z = 0; return 1 / z; }"), vm::TrapError);
  EXPECT_THROW(run_int("int main() { int z = 0; return 1 % z; }"), vm::TrapError);
}

TEST(Vm, CycleLimitStopsRunaways) {
  const ir::IrProgram prog =
      ir::compile_source("int main() { int x = 1; while (x > 0) { x = x + 1; } return x; }",
                         OptLevel::O0);
  vm::Vm m{prog};
  m.set_cycle_limit(1e6);
  EXPECT_THROW(m.run_main(), vm::TrapError);
}

TEST(Vm, CommHooksReceiveCalls) {
  struct Recorder : vm::CommHooks {
    int rank() override { return 3; }
    int nprocs() override { return 8; }
    long long param(int i) override { return 10 + i; }
    std::vector<std::pair<int, long long>> sends;
    void send(int peer, int, vm::ArrayObj&, long long, long long n) override {
      sends.emplace_back(peer, n);
    }
    void recv(int, int, vm::ArrayObj& arr, long long off, long long n) override {
      for (long long k = 0; k < n; ++k) arr.data[static_cast<std::size_t>(off + k)].f = 9.0;
    }
  };
  const char* src = R"(
int main() {
  int me = p2p_rank();
  int np = p2p_nprocs();
  int n = p2p_param(0);
  double a[n];
  p2p_send(me + 1, 5, a, 0, n);
  p2p_recv(me - 1, 5, a, 2, 3);
  if (a[2] == 9.0 && a[4] == 9.0 && a[5] == 0.0) { return me * 100 + np + n; }
  return 0-1;
}
)";
  const ir::IrProgram prog = ir::compile_source(src, OptLevel::O2);
  vm::Vm m{prog};
  Recorder rec;
  m.set_hooks(&rec);
  EXPECT_EQ(m.run_main(), 3 * 100 + 8 + 10);
  ASSERT_EQ(rec.sends.size(), 1u);
  EXPECT_EQ(rec.sends[0], (std::pair<int, long long>{4, 10}));
}

TEST(Vm, BlockTimersAccumulate) {
  const char* src = R"(
int main() {
  int s = 0;
  for (int k = 0; k < 5; k = k + 1) {
    dperf_block_begin(7);
    for (int i = 0; i < 100; i = i + 1) { s = s + i; }
    dperf_block_end(7);
  }
  return s;
}
)";
  const ir::IrProgram prog = ir::compile_source(src, OptLevel::O0);
  vm::Vm m{prog};
  m.run_main();
  const auto& stat = m.papi().blocks.at(7);
  EXPECT_EQ(stat.executions, 5u);
  EXPECT_GT(stat.cycles, 5 * 100.0);  // at least one cycle per iteration
  EXPECT_GT(m.papi().mean_cycles(7), 100.0);
}

TEST(Vm, MismatchedBlockEndTraps) {
  EXPECT_THROW(run_int("int main() { dperf_block_end(3); return 0; }"), vm::TrapError);
}

TEST(Vm, CyclesScaleWithWork) {
  const double c1 = run_cycles(
      "int main() { int s = 0; for (int i = 0; i < 100; i = i + 1) { s = s + i; } return s; }",
      OptLevel::O0);
  const double c2 = run_cycles(
      "int main() { int s = 0; for (int i = 0; i < 1000; i = i + 1) { s = s + i; } return s; }",
      OptLevel::O0);
  EXPECT_GT(c2, 5 * c1);
  EXPECT_LT(c2, 15 * c1);
}

// --- optimization pipelines ---

const char* kKernel = R"(
int main() {
  int n = 40;
  double u[n * n];
  for (int i = 0; i < n * n; i = i + 1) { u[i] = 0.5; }
  double acc = 0.0;
  for (int i = 1; i < n - 1; i = i + 1) {
    for (int j = 1; j < n - 1; j = j + 1) {
      int idx = i * n + j;
      double v = 0.25 * (u[idx - 1] + u[idx + 1] + u[idx - n] + u[idx + n]);
      u[idx] = v * 1.0 + 0.0;
      acc = acc + v * 2.0;
    }
  }
  if (acc > 0.0) { return 1; }
  return 0;
}
)";

TEST(Pipeline, AllLevelsAgreeOnSemantics) {
  for (OptLevel lvl : ir::all_opt_levels()) EXPECT_EQ(run_int(kKernel, lvl), 1)
      << ir::opt_level_name(lvl);
}

TEST(Pipeline, HigherLevelsExecuteFewerCycles) {
  const double o0 = run_cycles(kKernel, OptLevel::O0);
  const double o1 = run_cycles(kKernel, OptLevel::O1);
  const double o2 = run_cycles(kKernel, OptLevel::O2);
  const double o3 = run_cycles(kKernel, OptLevel::O3);
  const double os = run_cycles(kKernel, OptLevel::Os);
  EXPECT_LT(o1, o0 * 0.8) << "promotion should cut memory traffic";
  EXPECT_LE(o2, o1) << "CSE should not regress";
  EXPECT_LT(o3, o2 * 1.001) << "unroll+LICM should not regress";
  EXPECT_LE(os, o2 * 1.001);
  // The overall O0/O3 spread matches the paper's Fig. 9 character (the O0
  // curve is roughly 3x the optimized ones).
  EXPECT_GT(o0 / o3, 1.8);
}

TEST(Pipeline, OsIsNotLargerThanO3Code) {
  const ir::IrProgram o3 = ir::compile_source(kKernel, OptLevel::O3);
  const ir::IrProgram os = ir::compile_source(kKernel, OptLevel::Os);
  EXPECT_LE(os.instr_count(), o3.instr_count());
}

TEST(Passes, ConstantFoldingFoldsLiterals) {
  const ir::IrProgram prog =
      ir::compile_source("int main() { return 2 + 3 * 4 - 1; }", OptLevel::O1);
  // After folding, main should contain no arithmetic at all.
  for (const auto& blk : prog.functions[0].blocks)
    for (const auto& in : blk.instrs) {
      EXPECT_NE(in.op, ir::Op::AddI);
      EXPECT_NE(in.op, ir::Op::MulI);
      EXPECT_NE(in.op, ir::Op::SubI);
    }
  EXPECT_EQ(run_int("int main() { return 2 + 3 * 4 - 1; }", OptLevel::O1), 13);
}

TEST(Passes, PromotionRemovesScalarMemoryTraffic) {
  const ir::IrProgram prog = ir::compile_source(
      "int main() { int s = 0; for (int i = 0; i < 9; i = i + 1) { s = s + i; } return s; }",
      OptLevel::O1);
  for (const auto& blk : prog.functions[0].blocks)
    for (const auto& in : blk.instrs) {
      EXPECT_NE(in.op, ir::Op::LoadVar);
      EXPECT_NE(in.op, ir::Op::StoreVar);
    }
}

TEST(Passes, CseDeduplicatesIndexArithmetic) {
  const char* src = R"(
int main() {
  int n = 10;
  double a[n * n];
  int i = 3; int j = 4;
  a[i * n + j] = 1.0;
  double x = a[i * n + j];
  if (x == 1.0) { return 1; }
  return 0;
}
)";
  EXPECT_EQ(run_int(src, OptLevel::O2), 1);
  const double o1 = run_cycles(src, OptLevel::O1);
  const double o2 = run_cycles(src, OptLevel::O2);
  EXPECT_LT(o2, o1);
}

TEST(Passes, LicmHoistsInvariantMultiplication) {
  const char* src = R"(
int main() {
  int n = 50;
  int s = 0;
  for (int i = 0; i < 200; i = i + 1) { s = s + n * n; }
  return s;
}
)";
  EXPECT_EQ(run_int(src, OptLevel::Os), 200 * 2500);
  const double o2 = run_cycles(src, OptLevel::O2);
  const double os = run_cycles(src, OptLevel::Os);
  EXPECT_LT(os, o2) << "n*n should be hoisted out of the loop";
}

TEST(Passes, LicmDoesNotHoistFirstIterationObservableDefs) {
  // x is read before being redefined inside the loop; hoisting x = a*b
  // would corrupt the first iteration.
  const char* src = R"(
int main() {
  int a = 6; int b = 7;
  int x = 1;
  int s = 0;
  for (int i = 0; i < 3; i = i + 1) {
    s = s + x;
    x = a * b;
  }
  return s;  // 1 + 42 + 42 = 85
}
)";
  for (OptLevel lvl : ir::all_opt_levels()) EXPECT_EQ(run_int(src, lvl), 85)
      << ir::opt_level_name(lvl);
}

TEST(Passes, UnrollPreservesTripCountsIncludingRemainder) {
  for (int n : {0, 1, 3, 4, 5, 7, 8, 9, 17}) {
    const std::string src =
        "int main() { int s = 0; for (int i = 0; i < " + std::to_string(n) +
        "; i = i + 1) { s = s + i; } return s; }";
    const long long want = static_cast<long long>(n) * (n - 1) / 2;
    EXPECT_EQ(run_int(src, OptLevel::O3), want) << "n=" << n;
  }
}

TEST(Passes, UnrollSkipsLoopsWithCalls) {
  minic::Program p = minic::parse(R"(
int f(int x) { return x + 1; }
int main() {
  int s = 0;
  for (int i = 0; i < 10; i = i + 1) { s = f(s); }
  return s;
}
)");
  EXPECT_EQ(ir::unroll_loops(p, 4), 0);
}

TEST(Passes, UnrollTransformsEligibleLoops) {
  minic::Program p = minic::parse(
      "int main() { int s = 0; for (int i = 0; i < 10; i = i + 1) { s = s + i; } return s; }");
  EXPECT_EQ(ir::unroll_loops(p, 4), 1);
}

TEST(Pipeline, ParseOptLevelNames) {
  EXPECT_EQ(ir::parse_opt_level("0"), OptLevel::O0);
  EXPECT_EQ(ir::parse_opt_level("O3"), OptLevel::O3);
  EXPECT_EQ(ir::parse_opt_level("s"), OptLevel::Os);
  EXPECT_THROW(ir::parse_opt_level("fast"), std::invalid_argument);
}

}  // namespace
}  // namespace pdc
