#include "ir/cfg.hpp"

#include <algorithm>

namespace pdc::ir {

Cfg analyze_cfg(const IrFunction& fn) {
  const auto n = fn.blocks.size();
  Cfg cfg;
  cfg.succs.resize(n);
  cfg.preds.resize(n);
  for (std::size_t b = 0; b < n; ++b) {
    cfg.succs[b] = fn.successors(static_cast<int>(b));
    for (int s : cfg.succs[b]) cfg.preds[static_cast<std::size_t>(s)].push_back(static_cast<int>(b));
  }
  // Iterative dominators: dom(entry) = {entry}; dom(b) = {b} ∪ ∩ dom(preds).
  cfg.dom.assign(n, std::vector<bool>(n, true));
  cfg.dom[0].assign(n, false);
  cfg.dom[0][0] = true;
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t b = 1; b < n; ++b) {
      std::vector<bool> next(n, true);
      if (cfg.preds[b].empty()) {
        // Unreachable block: dominated by everything (vacuous); keep as-is.
        continue;
      }
      for (int p : cfg.preds[b])
        for (std::size_t i = 0; i < n; ++i)
          next[i] = next[i] && cfg.dom[static_cast<std::size_t>(p)][i];
      next[b] = true;
      if (next != cfg.dom[b]) {
        cfg.dom[b] = std::move(next);
        changed = true;
      }
    }
  }
  return cfg;
}

std::vector<Loop> find_loops(const IrFunction& fn, const Cfg& cfg) {
  const auto n = fn.blocks.size();
  std::vector<Loop> loops;
  auto find_or_create = [&](int header) -> Loop& {
    for (Loop& l : loops)
      if (l.header == header) return l;
    Loop l;
    l.header = header;
    l.contains.assign(n, false);
    l.contains[static_cast<std::size_t>(header)] = true;
    l.blocks.push_back(header);
    loops.push_back(std::move(l));
    return loops.back();
  };

  for (std::size_t b = 0; b < n; ++b) {
    for (int s : cfg.succs[b]) {
      if (!cfg.dominates(s, static_cast<int>(b))) continue;  // not a back edge
      Loop& loop = find_or_create(s);
      // Walk predecessors backward from the back-edge source.
      std::vector<int> work{static_cast<int>(b)};
      while (!work.empty()) {
        const int x = work.back();
        work.pop_back();
        if (loop.has(x)) continue;
        loop.contains[static_cast<std::size_t>(x)] = true;
        loop.blocks.push_back(x);
        for (int p : cfg.preds[static_cast<std::size_t>(x)]) work.push_back(p);
      }
    }
  }
  // Innermost first: fewer blocks first.
  std::sort(loops.begin(), loops.end(),
            [](const Loop& a, const Loop& b) { return a.blocks.size() < b.blocks.size(); });
  return loops;
}

}  // namespace pdc::ir
