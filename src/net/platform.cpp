#include "net/platform.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

namespace pdc::net {

NodeIdx Platform::add_host(std::string name, double speed_hz, Ipv4 ip) {
  const auto idx = static_cast<NodeIdx>(nodes_.size());
  nodes_.push_back(NodeInfo{std::move(name), /*is_host=*/true, speed_hz, ip});
  adjacency_.emplace_back();
  hosts_.push_back(idx);
  return idx;
}

NodeIdx Platform::add_router(std::string name) {
  const auto idx = static_cast<NodeIdx>(nodes_.size());
  nodes_.push_back(NodeInfo{std::move(name), /*is_host=*/false, 0.0, Ipv4{}});
  adjacency_.emplace_back();
  return idx;
}

LinkIdx Platform::add_link(std::string name, double bandwidth_Bps, Time latency) {
  const auto idx = static_cast<LinkIdx>(links_.size());
  links_.push_back(Link{std::move(name), bandwidth_Bps, latency});
  return idx;
}

void Platform::connect(NodeIdx a, NodeIdx b, LinkIdx link) {
  const int edge = static_cast<int>(edges_.size());
  edges_.push_back(Edge{a, b, link});
  adjacency_[static_cast<std::size_t>(a)].push_back(edge);
  adjacency_[static_cast<std::size_t>(b)].push_back(edge);
}

void Platform::set_route(NodeIdx src, NodeIdx dst, std::vector<Hop> hops, bool symmetric) {
  Route fwd;
  fwd.hops = hops;
  for (const Hop& h : hops) fwd.latency += links_[static_cast<std::size_t>(h.link)].latency;
  explicit_routes_[pair_key(src, dst)] = std::move(fwd);
  if (symmetric) {
    Route rev;
    for (auto it = hops.rbegin(); it != hops.rend(); ++it) {
      rev.hops.push_back(Hop{it->link, 1 - it->dir});
      rev.latency += links_[static_cast<std::size_t>(it->link)].latency;
    }
    explicit_routes_[pair_key(dst, src)] = std::move(rev);
  }
}

const Route& Platform::route(NodeIdx src, NodeIdx dst) const {
  if (auto it = explicit_routes_.find(pair_key(src, dst)); it != explicit_routes_.end())
    return it->second;
  if (auto it = route_cache_.find(pair_key(src, dst)); it != route_cache_.end())
    return it->second;
  Route r = compute_bfs_route(src, dst);
  auto [it, _] = route_cache_.emplace(pair_key(src, dst), std::move(r));
  return it->second;
}

Route Platform::compute_bfs_route(NodeIdx src, NodeIdx dst) const {
  if (src == dst) return Route{};
  std::vector<int> via_edge(nodes_.size(), -1);
  std::vector<NodeIdx> parent(nodes_.size(), -1);
  std::deque<NodeIdx> frontier{src};
  parent[static_cast<std::size_t>(src)] = src;
  while (!frontier.empty()) {
    const NodeIdx n = frontier.front();
    frontier.pop_front();
    if (n == dst) break;
    for (int e : adjacency_[static_cast<std::size_t>(n)]) {
      const Edge& edge = edges_[static_cast<std::size_t>(e)];
      const NodeIdx next = edge.a == n ? edge.b : edge.a;
      if (parent[static_cast<std::size_t>(next)] != -1) continue;
      parent[static_cast<std::size_t>(next)] = n;
      via_edge[static_cast<std::size_t>(next)] = e;
      frontier.push_back(next);
    }
  }
  if (parent[static_cast<std::size_t>(dst)] == -1)
    throw std::runtime_error("Platform::route: no path from " +
                             nodes_[static_cast<std::size_t>(src)].name + " to " +
                             nodes_[static_cast<std::size_t>(dst)].name);
  Route r;
  for (NodeIdx n = dst; n != src; n = parent[static_cast<std::size_t>(n)]) {
    const Edge& edge = edges_[static_cast<std::size_t>(via_edge[static_cast<std::size_t>(n)])];
    // The hop is traversed *into* n: direction 0 when moving a->b.
    const int dir = edge.b == n ? 0 : 1;
    r.hops.push_back(Hop{edge.link, dir});
    r.latency += links_[static_cast<std::size_t>(edge.link)].latency;
  }
  std::reverse(r.hops.begin(), r.hops.end());
  return r;
}

std::vector<Platform::ExplicitRoute> Platform::explicit_route_list() const {
  std::vector<ExplicitRoute> out;
  out.reserve(explicit_routes_.size());
  for (const auto& [key, route] : explicit_routes_)
    out.push_back(ExplicitRoute{static_cast<NodeIdx>(key >> 32),
                                static_cast<NodeIdx>(key & 0xffffffffu), &route});
  std::sort(out.begin(), out.end(), [](const ExplicitRoute& a, const ExplicitRoute& b) {
    return a.src != b.src ? a.src < b.src : a.dst < b.dst;
  });
  return out;
}

std::optional<NodeIdx> Platform::find_by_name(const std::string& name) const {
  for (std::size_t i = 0; i < nodes_.size(); ++i)
    if (nodes_[i].name == name) return static_cast<NodeIdx>(i);
  return std::nullopt;
}

std::optional<NodeIdx> Platform::find_by_ip(Ipv4 ip) const {
  for (NodeIdx h : hosts_)
    if (nodes_[static_cast<std::size_t>(h)].ip == ip) return h;
  return std::nullopt;
}

}  // namespace pdc::net
