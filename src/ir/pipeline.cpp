#include "ir/pipeline.hpp"

#include <stdexcept>

#include "ir/ast_opt.hpp"
#include "ir/lower.hpp"
#include "ir/passes.hpp"
#include "minic/parser.hpp"
#include "minic/sema.hpp"

namespace pdc::ir {

const char* opt_level_name(OptLevel lvl) {
  switch (lvl) {
    case OptLevel::O0: return "O0";
    case OptLevel::O1: return "O1";
    case OptLevel::O2: return "O2";
    case OptLevel::O3: return "O3";
    case OptLevel::Os: return "Os";
  }
  return "?";
}

OptLevel parse_opt_level(const std::string& text) {
  std::string t = text;
  if (t.size() == 2 && (t[0] == 'O' || t[0] == 'o')) t = t.substr(1);
  if (t == "0") return OptLevel::O0;
  if (t == "1") return OptLevel::O1;
  if (t == "2") return OptLevel::O2;
  if (t == "3") return OptLevel::O3;
  if (t == "s" || t == "S") return OptLevel::Os;
  throw std::invalid_argument("unknown optimization level '" + text + "'");
}

const std::vector<OptLevel>& all_opt_levels() {
  static const std::vector<OptLevel> kAll{OptLevel::O0, OptLevel::O1, OptLevel::O2,
                                          OptLevel::O3, OptLevel::Os};
  return kAll;
}

namespace {

void run_to_fixpoint(IrFunction& fn, bool with_cse) {
  for (int round = 0; round < 8; ++round) {
    bool changed = false;
    changed |= fold_constants(fn);
    changed |= propagate_copies(fn);
    if (with_cse) changed |= eliminate_common_subexpressions(fn);
    changed |= propagate_copies(fn);
    changed |= eliminate_dead_code(fn);
    if (!changed) break;
  }
}

}  // namespace

IrProgram compile(const minic::Program& program, OptLevel level) {
  minic::Program ast = program.clone();
  minic::check(ast);
  if (level == OptLevel::O3) {
    unroll_loops(ast, 4);
    minic::check(ast);  // re-annotate the transformed tree
  }
  IrProgram ir = lower(ast);
  if (level == OptLevel::O0) return ir;

  for (IrFunction& fn : ir.functions) {
    promote_variables(fn);
    const bool with_cse = level != OptLevel::O1;
    run_to_fixpoint(fn, with_cse);
    if (level == OptLevel::O3 || level == OptLevel::Os) {
      hoist_loop_invariants(fn);
      run_to_fixpoint(fn, with_cse);
    }
  }
  return ir;
}

IrProgram compile_source(const std::string& source, OptLevel level) {
  return compile(minic::parse(source), level);
}

}  // namespace pdc::ir
