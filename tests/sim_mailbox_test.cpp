#include "sim/mailbox.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

namespace pdc::sim {
namespace {

TEST(Mailbox, TryRecvOnEmptyReturnsNothing) {
  Engine eng;
  Mailbox<int> mb{eng};
  EXPECT_FALSE(mb.try_recv().has_value());
  EXPECT_TRUE(mb.empty());
}

TEST(Mailbox, QueuedValuesAreFifo) {
  Engine eng;
  Mailbox<int> mb{eng};
  mb.push(1);
  mb.push(2);
  mb.push(3);
  EXPECT_EQ(mb.size(), 3u);
  EXPECT_EQ(mb.try_recv(), 1);
  EXPECT_EQ(mb.try_recv(), 2);
  EXPECT_EQ(mb.try_recv(), 3);
  EXPECT_FALSE(mb.try_recv().has_value());
}

TEST(Mailbox, RecvSuspendsUntilPush) {
  Engine eng;
  Mailbox<std::string> mb{eng};
  std::vector<std::string> got;
  eng.spawn([](Mailbox<std::string>& m, std::vector<std::string>& out) -> Process {
    out.push_back(co_await m.recv());
    out.push_back(co_await m.recv());
  }(mb, got));
  eng.schedule_at(1.0, [&] { mb.push("hello"); });
  eng.schedule_at(2.0, [&] { mb.push("world"); });
  eng.run();
  EXPECT_EQ(got, (std::vector<std::string>{"hello", "world"}));
  EXPECT_DOUBLE_EQ(eng.now(), 2.0);
}

TEST(Mailbox, RecvConsumesAlreadyQueuedValueWithoutSuspending) {
  Engine eng;
  Mailbox<int> mb{eng};
  mb.push(7);
  Time when = -1;
  eng.spawn([](Engine& e, Mailbox<int>& m, Time& w) -> Process {
    const int v = co_await m.recv();
    EXPECT_EQ(v, 7);
    w = e.now();
  }(eng, mb, when));
  eng.run();
  EXPECT_EQ(when, 0.0);
}

TEST(Mailbox, MultipleWaitersServedFifo) {
  Engine eng;
  Mailbox<int> mb{eng};
  std::vector<std::pair<int, int>> got;  // (waiter, value)
  for (int w = 0; w < 3; ++w) {
    eng.spawn([](Mailbox<int>& m, std::vector<std::pair<int, int>>& out, int id) -> Process {
      const int v = co_await m.recv();
      out.emplace_back(id, v);
    }(mb, got, w));
  }
  eng.schedule_at(1.0, [&] {
    mb.push(100);
    mb.push(200);
    mb.push(300);
  });
  eng.run();
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], (std::pair<int, int>{0, 100}));
  EXPECT_EQ(got[1], (std::pair<int, int>{1, 200}));
  EXPECT_EQ(got[2], (std::pair<int, int>{2, 300}));
}

TEST(Mailbox, RecvForTimesOutWithNullopt) {
  Engine eng;
  Mailbox<int> mb{eng};
  std::optional<int> got = 1234;
  Time when = -1;
  eng.spawn([](Engine& e, Mailbox<int>& m, std::optional<int>& out, Time& w) -> Process {
    out = co_await m.recv_for(2.5);
    w = e.now();
  }(eng, mb, got, when));
  eng.run();
  EXPECT_FALSE(got.has_value());
  EXPECT_DOUBLE_EQ(when, 2.5);
}

TEST(Mailbox, RecvForDeliversBeforeTimeout) {
  Engine eng;
  Mailbox<int> mb{eng};
  std::optional<int> got;
  Time when = -1;
  eng.spawn([](Engine& e, Mailbox<int>& m, std::optional<int>& out, Time& w) -> Process {
    out = co_await m.recv_for(10.0);
    w = e.now();
  }(eng, mb, got, when));
  eng.schedule_at(1.0, [&] { mb.push(5); });
  eng.run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 5);
  EXPECT_DOUBLE_EQ(when, 1.0);
  // The pending timeout event must not resume the process a second time;
  // run() completing without exception is the assertion.
}

TEST(Mailbox, DeliveredRecvForReleasesItsTimeoutEagerly) {
  // Regression for the closure-retention leak: a receive satisfied before
  // its timeout used to leave the armed timeout closure parked in the event
  // queue until fire time. It is now a one-shot timer slot destroyed by
  // push() the moment the value wins, so across many rounds the engine needs
  // exactly one slot (recycled), and nothing survives to fire later.
  Engine eng;
  Mailbox<int> mb{eng};
  constexpr int kRounds = 1000;
  int received = 0;
  eng.spawn([](Mailbox<int>& m, int& n) -> Process {
    for (int i = 0; i < kRounds; ++i) {
      auto v = co_await m.recv_for(1e6);  // far-future timeout, always wins
      EXPECT_TRUE(v.has_value());
      n += v.has_value();
    }
  }(mb, received));
  eng.spawn([](Engine& e, Mailbox<int>& m) -> Process {
    for (int i = 0; i < kRounds; ++i) {
      co_await e.sleep(0.001);
      m.push(i);
    }
  }(eng, mb));
  eng.run();
  EXPECT_EQ(received, kRounds);
  // One slot, recycled every round — not one per receive.
  EXPECT_EQ(eng.timer_slot_count(), 1u);
  // The dead arms were shed (swept or popped stale), never dispatched as
  // timeouts, and the queue never grew with the round count.
  EXPECT_EQ(eng.stats().stale_slot_events, static_cast<std::uint64_t>(kRounds));
  EXPECT_LT(eng.stats().peak_queue_depth, 200u);
}

TEST(Mailbox, RecvForAfterTimeoutCanReceiveLater) {
  Engine eng;
  Mailbox<int> mb{eng};
  std::vector<int> got;
  eng.spawn([](Mailbox<int>& m, std::vector<int>& out) -> Process {
    auto first = co_await m.recv_for(1.0);
    EXPECT_FALSE(first.has_value());
    out.push_back(co_await m.recv());  // now wait forever
  }(mb, got));
  eng.schedule_at(5.0, [&] { mb.push(77); });
  eng.run();
  EXPECT_EQ(got, std::vector<int>{77});
}

TEST(Mailbox, LatestValueOverwritesUnconsumed) {
  Engine eng;
  Mailbox<int> mb{eng, MailboxPolicy::LatestValue};
  mb.push(1);
  mb.push(2);
  mb.push(3);
  EXPECT_EQ(mb.size(), 1u);
  EXPECT_EQ(mb.overwritten(), 2u);
  EXPECT_EQ(mb.try_recv(), 3);
}

TEST(Mailbox, LatestValueStillHandsOffToWaiter) {
  Engine eng;
  Mailbox<int> mb{eng, MailboxPolicy::LatestValue};
  std::vector<int> got;
  eng.spawn([](Mailbox<int>& m, std::vector<int>& out) -> Process {
    out.push_back(co_await m.recv());
    out.push_back(co_await m.recv());
  }(mb, got));
  eng.schedule_at(1.0, [&] { mb.push(10); });
  eng.schedule_at(2.0, [&] { mb.push(20); });
  eng.run();
  EXPECT_EQ(got, (std::vector<int>{10, 20}));
  EXPECT_EQ(mb.overwritten(), 0u);
}

TEST(Mailbox, MoveOnlyPayloadsSupported) {
  Engine eng;
  Mailbox<std::unique_ptr<int>> mb{eng};
  mb.push(std::make_unique<int>(9));
  auto v = mb.try_recv();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(**v, 9);
}

TEST(Mailbox, StressInterleavedProducersConsumers) {
  Engine eng;
  Mailbox<int> mb{eng};
  std::vector<int> got;
  constexpr int kPerProducer = 50;
  for (int p = 0; p < 4; ++p) {
    eng.spawn([](Engine& e, Mailbox<int>& m, int base) -> Process {
      for (int i = 0; i < kPerProducer; ++i) {
        co_await e.sleep(0.25 + (base % 3) * 0.1);
        m.push(base * 1000 + i);
      }
    }(eng, mb, p));
  }
  eng.spawn([](Mailbox<int>& m, std::vector<int>& out) -> Process {
    for (int i = 0; i < 4 * kPerProducer; ++i) out.push_back(co_await m.recv());
  }(mb, got));
  eng.run();
  EXPECT_EQ(got.size(), static_cast<std::size_t>(4 * kPerProducer));
  // Per-producer order is preserved even though streams interleave.
  for (int p = 0; p < 4; ++p) {
    int expected = 0;
    for (int v : got) {
      if (v / 1000 == p) {
        EXPECT_EQ(v % 1000, expected++);
      }
    }
    EXPECT_EQ(expected, kPerProducer);
  }
}

}  // namespace
}  // namespace pdc::sim
