// Scale trajectory microbench for the dense overlay: deployment memory and
// event-kernel throughput as the peer population grows by orders of
// magnitude. The claim under test is the PR's scale contract — idle peers
// are O(1) bytes (lazy passive registration: no actor, no mailboxes, no
// idle events) and a fixed-size computation's event throughput does not
// degrade with the size of the platform it runs on.
//
// Per peer count (10^2..10^5; PDC_QUICK stops at 10^4):
//  * deploy a scale-free (Barabasi-Albert) platform with `boot lazy` and 8
//    spread trackers, measuring live heap bytes before/after (counting
//    global operator new/delete, malloc_usable_size both ways) — the
//    bytes/peer column, platform nodes and links included;
//  * run one fixed 16-rank ring computation (compute + send + recv +
//    allreduce iterations) and measure engine events dispatched per
//    wall-clock second over the run window.
//
// Sizes are measured interleaved (rep-outer, size-inner, like
// BENCH_engine) and the best rate per size is kept; bytes are taken from
// the first rep — deployment is deterministic. Emits BENCH_scale.json
// (argv[1] redirects). --budget-bytes-per-peer=N exits nonzero when any
// row exceeds the budget; CI's scale-smoke job pins the committed budget.
#include <malloc.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <vector>

#include "p2pdc/environment.hpp"
#include "scenario/runner.hpp"
#include "support/env.hpp"
#include "support/json.hpp"

namespace {
// Live heap bytes through the replaceable global operator new/delete.
// malloc_usable_size on both sides keeps the accounting symmetric without
// needing sized deallocation everywhere.
std::uint64_t g_live_bytes = 0;
}  // namespace

void* operator new(std::size_t n) {
  if (void* p = std::malloc(n)) {
    g_live_bytes += malloc_usable_size(p);
    return p;
  }
  throw std::bad_alloc{};
}
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  void* p = std::malloc(n);
  if (p) g_live_bytes += malloc_usable_size(p);
  return p;
}
void* operator new(std::size_t n, std::align_val_t al) {
  const auto align = static_cast<std::size_t>(al);
  if (void* p = std::aligned_alloc(align, (n + align - 1) / align * align)) {
    g_live_bytes += malloc_usable_size(p);
    return p;
  }
  throw std::bad_alloc{};
}
void operator delete(void* p) noexcept {
  if (p == nullptr) return;
  g_live_bytes -= malloc_usable_size(p);
  std::free(p);
}
void operator delete(void* p, std::size_t) noexcept { ::operator delete(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { ::operator delete(p); }
void operator delete(void* p, std::align_val_t) noexcept { ::operator delete(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { ::operator delete(p); }

namespace {

using namespace pdc;

struct Timer {
  std::chrono::steady_clock::time_point t0 = std::chrono::steady_clock::now();
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  }
};

constexpr int kRanks = 16;
constexpr int kIterations = 8;

struct Row {
  int peers = 0;
  int hosts = 0;
  std::uint64_t deploy_bytes = 0;
  double bytes_per_peer = 0;
  double boot_seconds = 0;
  std::uint64_t events = 0;
  double wall_seconds = 0;
  double events_per_sec = 0;
};

/// The fixed workload replayed on every platform size: a synchronous ring
/// with a residual-style allreduce, sized so the event stream is dominated
/// by the computation, not the boot.
sim::Task<void> ring_main(p2pdc::PeerContext& ctx) {
  const int np = ctx.nprocs();
  for (int i = 0; i < kIterations; ++i) {
    co_await ctx.compute(0.01);
    co_await ctx.send((ctx.rank() + 1) % np, 1, 1024.0);
    (void)co_await ctx.recv((ctx.rank() + np - 1) % np, 1);
    (void)co_await ctx.allreduce_max(static_cast<double>(i));
  }
  ctx.set_result({static_cast<double>(ctx.rank())});
}

Row measure(int peers) {
  scenario::PlatformSpec plat = scenario::PlatformSpec::scale_free();
  scenario::RunSpec run;
  run.peers = peers;
  run.lazy_boot = true;
  run.trackers = 8;
  run.seed = 42;

  Row row;
  row.peers = peers;
  const std::uint64_t before = g_live_bytes;
  Timer boot_timer;
  std::unique_ptr<scenario::Deployment> d = scenario::deploy(plat, run);
  row.boot_seconds = boot_timer.seconds();
  row.hosts = d->platform.host_count();
  row.deploy_bytes = g_live_bytes - before;
  row.bytes_per_peer = static_cast<double>(row.deploy_bytes) / peers;

  p2pdc::TaskSpec spec;
  spec.name = "scale_ring";
  spec.peers_needed = kRanks;
  spec.subtask_bytes = 4096;
  spec.result_bytes = 1024;
  const std::uint64_t events_before = d->engine.stats().events_dispatched;
  Timer run_timer;
  const p2pdc::ComputationResult res =
      d->env->run_computation(d->submitter, spec, ring_main);
  row.wall_seconds = run_timer.seconds();
  if (!res.ok) {
    std::fprintf(stderr, "scale ring failed at %d peers: %s\n", peers,
                 res.failure.c_str());
    std::exit(1);
  }
  row.events = d->engine.stats().events_dispatched - events_before;
  row.events_per_sec =
      row.wall_seconds > 0 ? static_cast<double>(row.events) / row.wall_seconds : 0;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pdc;
  const char* out_path = "BENCH_scale.json";
  double budget_bytes_per_peer = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--budget-bytes-per-peer=", 24) == 0)
      budget_bytes_per_peer = std::atof(argv[i] + 24);
    else
      out_path = argv[i];
  }

  const bool quick = env_flag("PDC_QUICK");
  std::vector<int> sizes{100, 1'000, 10'000};
  if (!quick) sizes.push_back(100'000);
  const int reps = quick ? 1 : 3;

  std::vector<Row> rows(sizes.size());
  for (int rep = 0; rep < reps; ++rep) {
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      const Row r = measure(sizes[i]);
      if (rep == 0 || r.events_per_sec > rows[i].events_per_sec) {
        const Row first = rows[i];
        rows[i] = r;
        if (rep > 0) {  // bytes/boot stay from the deterministic first rep
          rows[i].deploy_bytes = first.deploy_bytes;
          rows[i].bytes_per_peer = first.bytes_per_peer;
          rows[i].boot_seconds = first.boot_seconds;
        }
      }
    }
  }

  bool over_budget = false;
  JsonWriter w;
  w.begin_object();
  w.kv("bench", "scale_bytes_and_events");
  w.kv("quick", quick);
  w.kv("reps", reps);
  w.kv("ranks", kRanks);
  w.key("rows").begin_array();
  for (const Row& r : rows) {
    w.begin_object();
    w.kv("peers", r.peers);
    w.kv("hosts", r.hosts);
    w.kv("deploy_bytes", r.deploy_bytes);
    w.kv("bytes_per_peer", r.bytes_per_peer);
    w.kv("boot_seconds", r.boot_seconds);
    w.kv("events", r.events);
    w.kv("wall_seconds", r.wall_seconds);
    w.kv("events_per_sec", r.events_per_sec);
    w.end_object();
    std::printf("%7d peers  %9.1f B/peer  boot %6.3f s  %10llu events  %12.0f ev/s\n",
                r.peers, r.bytes_per_peer, r.boot_seconds,
                static_cast<unsigned long long>(r.events), r.events_per_sec);
    std::fflush(stdout);
    if (budget_bytes_per_peer > 0 && r.bytes_per_peer > budget_bytes_per_peer) {
      std::fprintf(stderr, "FAIL: %d peers at %.1f bytes/peer exceeds budget %.1f\n",
                   r.peers, r.bytes_per_peer, budget_bytes_per_peer);
      over_budget = true;
    }
  }
  w.end_array();
  w.end_object();

  std::FILE* f = std::fopen(out_path, "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::fputs(w.str().c_str(), f);
  std::fputs("\n", f);
  std::fclose(f);
  std::printf("wrote %s\n", out_path);
  return over_budget ? 1 : 0;
}
