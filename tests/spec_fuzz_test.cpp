// Property/fuzz tests for the spec text formats: randomly generated
// ScenarioSpec/CampaignSpec values (including the churn block) must survive
// render -> parse -> render structurally intact, and a corpus of malformed
// lines — plus random token-level mutations of valid documents — must be
// rejected with a ScenarioError diagnostic instead of crashing. The CI ASan
// job runs these with a fixed iteration budget (PDC_FUZZ_ITERS).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "campaign/spec.hpp"
#include "scenario/spec.hpp"
#include "support/env.hpp"
#include "support/rng.hpp"

namespace pdc {
namespace {

int fuzz_iters() { return env_int("PDC_FUZZ_ITERS", 150); }

// --- random spec generators -------------------------------------------------

churn::ChurnSpec random_churn(Rng& rng) {
  churn::ChurnSpec c;
  if (rng.bernoulli(0.5)) c.peer_crash_rate = rng.uniform(0.0, 0.1);
  if (rng.bernoulli(0.5)) c.mean_downtime = rng.uniform(0.0, 100.0);
  if (rng.bernoulli(0.3)) c.link_degrade_rate = rng.uniform(0.0, 0.05);
  if (rng.bernoulli(0.3)) c.link_degrade_scale = rng.uniform(0.05, 1.0);
  if (rng.bernoulli(0.3)) c.mean_degrade_time = rng.uniform(1.0, 200.0);
  if (rng.bernoulli(0.5)) c.horizon = rng.uniform(10.0, 1000.0);
  if (rng.bernoulli(0.5)) c.seed = rng.next_u64() % 100000;
  if (rng.bernoulli(0.5)) c.max_attempts = static_cast<int>(rng.uniform_int(1, 9));
  const int events = static_cast<int>(rng.uniform_int(0, 4));
  for (int i = 0; i < events; ++i) {
    churn::ChurnEvent ev;
    const int kind = static_cast<int>(rng.uniform_int(0, 4));
    ev.kind = static_cast<churn::ChurnEvent::Kind>(kind);
    ev.at = rng.uniform(0.0, 500.0);
    if (ev.kind != churn::ChurnEvent::Kind::PeerJoin && rng.bernoulli(0.6))
      ev.target = static_cast<int>(rng.uniform_int(0, 7));
    ev.scale =
        ev.kind == churn::ChurnEvent::Kind::LinkDegrade ? rng.uniform(0.05, 1.0) : 1.0;
    if (ev.kind == churn::ChurnEvent::Kind::LinkRestore) ev.scale = 1.0;
    c.events.push_back(ev);
  }
  return c;
}

scenario::PlatformSpec random_platform(Rng& rng) {
  switch (rng.uniform_int(0, 8)) {
    case 0: return scenario::PlatformSpec::grid5000();
    case 1: return scenario::PlatformSpec::lan();
    case 2: return scenario::PlatformSpec::xdsl();
    case 3: return scenario::PlatformSpec::federation();
    case 4: return scenario::PlatformSpec::wan();
    case 5: {
      scenario::PlatformSpec p = scenario::PlatformSpec::lan();
      auto& star = std::get<net::StarSpec>(p.spec);
      p.label = "star" + std::to_string(rng.uniform_int(0, 99));
      star.hosts = static_cast<int>(rng.uniform_int(0, 64));
      star.host_speed_hz = rng.uniform(1e9, 4e9);
      star.nic_bw_Bps = rng.uniform(1e6, 1e9);
      star.backbone_latency = rng.uniform(1e-6, 1e-3);
      return p;
    }
    case 6: {
      scenario::PlatformSpec p = scenario::PlatformSpec::scale_free();
      auto& sf = std::get<net::ScaleFreeSpec>(p.spec);
      p.label = "ba" + std::to_string(rng.uniform_int(0, 99));
      sf.hosts = static_cast<int>(rng.uniform_int(0, 128));  // 0 = auto-size
      sf.routers = static_cast<int>(rng.uniform_int(4, 64));
      sf.m = static_cast<int>(rng.uniform_int(1, 4));
      sf.access_bw_Bps = rng.uniform(1e6, 1e8);
      sf.core_latency = rng.uniform(1e-4, 1e-2);
      return p;
    }
    case 7: {
      scenario::PlatformSpec p = scenario::PlatformSpec::small_world();
      auto& sw = std::get<net::SmallWorldSpec>(p.spec);
      p.label = "ws" + std::to_string(rng.uniform_int(0, 99));
      sw.hosts = static_cast<int>(rng.uniform_int(0, 128));  // 0 = auto-size
      sw.routers = static_cast<int>(rng.uniform_int(4, 64));
      sw.k = static_cast<int>(rng.uniform_int(2, 8));
      sw.beta = rng.uniform(0.0, 1.0);
      return p;
    }
    default: {
      // Inline platfile text survives as an opaque block.
      std::string text;
      const int hosts = static_cast<int>(rng.uniform_int(2, 5));
      for (int i = 0; i < hosts; ++i)
        text += "host h" + std::to_string(i) + " speed 3GHz ip 10.0.0." +
                std::to_string(i + 1) + "\n";
      text += "router sw\n";
      for (int i = 0; i < hosts; ++i) {
        text += "link l" + std::to_string(i) + " bw 1Gbps lat 100us\n";
        text += "edge h" + std::to_string(i) + " sw l" + std::to_string(i) + "\n";
      }
      return scenario::PlatformSpec::from_text(text);
    }
  }
}

scenario::ScenarioSpec random_scenario(Rng& rng) {
  scenario::ScenarioSpec s;
  s.name = "fuzz" + std::to_string(rng.uniform_int(0, 9999));
  s.platform = random_platform(rng);
  s.run.peers = static_cast<int>(rng.uniform_int(1, 32));
  s.run.level = static_cast<ir::OptLevel>(rng.uniform_int(0, 4));
  s.run.allocation = rng.bernoulli(0.5) ? p2pdc::AllocationMode::Hierarchical
                                        : p2pdc::AllocationMode::Flat;
  s.run.scheme =
      rng.bernoulli(0.5) ? p2psap::Scheme::Synchronous : p2psap::Scheme::Asynchronous;
  s.run.mode = static_cast<scenario::Mode>(rng.uniform_int(0, 4));
  s.run.seed = rng.next_u64() % 1000000;
  s.run.grid_n = static_cast<int>(rng.uniform_int(16, 2048));
  s.run.iters = static_cast<int>(rng.uniform_int(1, 500));
  s.run.rcheck = static_cast<int>(rng.uniform_int(1, 16));
  s.run.omega = rng.uniform(0.1, 1.9);
  s.run.cmax = static_cast<int>(rng.uniform_int(2, 64));
  s.run.lazy_boot = rng.bernoulli(0.5);
  s.run.trackers = static_cast<int>(rng.uniform_int(1, 8));
  s.run.ranks =
      rng.bernoulli(0.5) ? 0 : static_cast<int>(rng.uniform_int(1, s.run.peers));
  s.run.churn = random_churn(rng);
  return s;
}

// --- round-trip properties --------------------------------------------------

TEST(SpecFuzz, ScenarioRoundTripsStructurally) {
  const int iters = fuzz_iters();
  for (int i = 0; i < iters; ++i) {
    Rng rng{0xF00D + static_cast<std::uint64_t>(i)};
    const scenario::ScenarioSpec spec = random_scenario(rng);
    const std::string text = scenario::render_scenario(spec);
    scenario::ScenarioSpec back;
    try {
      back = scenario::parse_scenario(text);
    } catch (const scenario::ScenarioError& e) {
      FAIL() << "iteration " << i << ": render produced unparsable text: " << e.what()
             << "\n" << text;
    }
    // Structural comparison: every field the text format carries.
    EXPECT_EQ(back.name, spec.name) << text;
    EXPECT_EQ(std::string(back.platform.kind()), spec.platform.kind()) << text;
    EXPECT_EQ(back.platform.label, spec.platform.label) << text;
    EXPECT_EQ(back.run.peers, spec.run.peers);
    EXPECT_EQ(back.run.level, spec.run.level);
    EXPECT_EQ(back.run.allocation, spec.run.allocation);
    EXPECT_EQ(back.run.scheme, spec.run.scheme);
    EXPECT_EQ(back.run.mode, spec.run.mode);
    EXPECT_EQ(back.run.seed, spec.run.seed);
    EXPECT_EQ(back.run.grid_n, spec.run.grid_n);
    EXPECT_EQ(back.run.iters, spec.run.iters);
    EXPECT_EQ(back.run.omega, spec.run.omega);
    EXPECT_EQ(back.run.cmax, spec.run.cmax);
    EXPECT_EQ(back.run.lazy_boot, spec.run.lazy_boot);
    EXPECT_EQ(back.run.trackers, spec.run.trackers);
    EXPECT_EQ(back.run.ranks, spec.run.ranks);
    EXPECT_EQ(back.run.churn, spec.run.churn) << text;
    // Canonical fixed point: render(parse(render(s))) == render(s).
    EXPECT_EQ(scenario::render_scenario(back), text);
  }
}

TEST(SpecFuzz, CampaignRoundTripsStructurally) {
  const int iters = fuzz_iters();
  for (int i = 0; i < iters; ++i) {
    Rng rng{0xCAFE + static_cast<std::uint64_t>(i)};
    campaign::CampaignSpec spec;
    spec.name = "camp" + std::to_string(rng.uniform_int(0, 999));
    spec.base = random_scenario(rng);
    // Inline platforms cannot be campaign bases' variants; keep the base
    // arbitrary but variants parameterized.
    const int variants = static_cast<int>(rng.uniform_int(0, 2));
    for (int v = 0; v < variants; ++v) {
      scenario::PlatformSpec p = random_platform(rng);
      if (std::holds_alternative<scenario::PlatformFileSpec>(p.spec))
        p = scenario::PlatformSpec::wan();
      spec.platforms.push_back(p);
    }
    auto maybe_axis = [&](auto& axis, auto gen) {
      const int n = static_cast<int>(rng.uniform_int(0, 3));
      for (int k = 0; k < n; ++k) axis.push_back(gen());
    };
    maybe_axis(spec.peers, [&] { return static_cast<int>(rng.uniform_int(1, 16)); });
    maybe_axis(spec.levels, [&] { return static_cast<ir::OptLevel>(rng.uniform_int(0, 4)); });
    maybe_axis(spec.schemes, [&] {
      return rng.bernoulli(0.5) ? p2psap::Scheme::Synchronous
                                : p2psap::Scheme::Asynchronous;
    });
    maybe_axis(spec.seeds, [&] { return rng.next_u64() % 10000; });
    maybe_axis(spec.churn_rates, [&] { return rng.uniform(0.0, 0.1); });
    maybe_axis(spec.churn_seeds, [&] { return rng.next_u64() % 10000; });
    spec.repetitions = static_cast<int>(rng.uniform_int(1, 5));

    const std::string text = campaign::render_campaign(spec);
    campaign::CampaignSpec back;
    try {
      back = campaign::parse_campaign(text);
    } catch (const scenario::ScenarioError& e) {
      FAIL() << "iteration " << i << ": render produced unparsable text: " << e.what()
             << "\n" << text;
    }
    EXPECT_EQ(back.name, spec.name);
    EXPECT_EQ(back.platforms.size(), spec.platforms.size());
    EXPECT_EQ(back.peers, spec.peers);
    EXPECT_EQ(back.levels, spec.levels);
    EXPECT_EQ(back.schemes, spec.schemes);
    EXPECT_EQ(back.seeds, spec.seeds);
    EXPECT_EQ(back.churn_rates, spec.churn_rates);
    EXPECT_EQ(back.churn_seeds, spec.churn_seeds);
    EXPECT_EQ(back.repetitions, spec.repetitions);
    EXPECT_EQ(back.base.run.churn, spec.base.run.churn);
    EXPECT_EQ(campaign::render_campaign(back), text) << text;
    // Expansion of the round-tripped spec is identical (keys and specs).
    const auto runs_a = campaign::expand(spec);
    const auto runs_b = campaign::expand(back);
    ASSERT_EQ(runs_a.size(), runs_b.size());
    for (std::size_t r = 0; r < runs_a.size(); ++r) {
      EXPECT_EQ(runs_a[r].key, runs_b[r].key);
      EXPECT_EQ(scenario::render_scenario(runs_a[r].spec),
                scenario::render_scenario(runs_b[r].spec));
    }
  }
}

// --- malformed input --------------------------------------------------------

TEST(SpecFuzz, MalformedScenarioLinesAreRejectedWithDiagnostics) {
  const char* corpus[] = {
      "peers",
      "peers x",
      "peers 4 5",
      "opt 9",
      "mode sometimes",
      "alloc vertical",
      "scheme mostly",
      "seed",
      "seed 12x",
      "grid twelve",
      "iters",
      "rcheck 2 3",
      "bench 1 2",
      "omega",
      "omega two",
      "cmax",
      "platform",
      "platform marsnet",
      "platform star hosts",
      "platform star hosts=abc",
      "platform star warp=9",
      "platform star =9",
      "platform file",
      "platform file a b",
      "platform inline",  // never closed
      "platform scale_free m=x",
      "platform scale_free warp=9",
      "platform small_world beta=maybe",
      "platform small_world k=",
      "boot",
      "boot never",
      "boot eager lazy",
      "trackers",
      "trackers 0",
      "trackers x",
      "ranks",
      "ranks -1",
      "ranks many",
      "scenario",
      "scenario a b",
      "wibble 3",
      "churn event degrade at=1 link=x",
  };
  for (const char* line : corpus) {
    const std::string text = std::string("scenario ok\n") + line + "\n";
    try {
      scenario::parse_scenario(text);
      FAIL() << "accepted malformed line: " << line;
    } catch (const scenario::ScenarioError& e) {
      EXPECT_GT(e.line(), 0) << line;
      EXPECT_FALSE(std::string(e.what()).empty());
    }
  }
}

TEST(SpecFuzz, MalformedCampaignLinesAreRejectedWithDiagnostics) {
  const char* corpus[] = {
      "campaign",
      "campaign a b",
      "repetitions",
      "repetitions 0",
      "repetitions x",
      "sweep",
      "sweep peers",
      "sweep peers x",
      "sweep opt 7",
      "sweep scheme warp",
      "sweep alloc diagonal",
      "sweep seed 1,x",
      "sweep churn_rate x",
      "sweep churn_rate -0.5",
      "sweep churn_seed x",
      "sweep platform mars",
      "sweep unknown 1",
      "variant",
      "variant inline",
      "variant star hosts=z",
      "variant scale_free routers=z",
      "variant small_world beta=x",
  };
  for (const char* line : corpus) {
    const std::string text = std::string("campaign ok\n") + line + "\n";
    try {
      campaign::parse_campaign(text);
      FAIL() << "accepted malformed line: " << line;
    } catch (const scenario::ScenarioError& e) {
      EXPECT_GT(e.line(), 0) << line;
      EXPECT_FALSE(std::string(e.what()).empty());
    }
  }
}

TEST(SpecFuzz, RandomMutationsNeverCrashTheParsers) {
  // Token-level mutations of valid documents: the parser must either accept
  // the result or throw ScenarioError — any other escape (or a crash under
  // ASan) fails the test.
  const char* garbage[] = {"",      "#",     "end",   "???",  "-1",   "1e999",
                           "peers", "churn", "sweep", "link", "=",    "at=",
                           "\t",    "0x12",  "nan",   "inf",  "🦀",   "boot",
                           "ranks", "beta="};
  const int iters = fuzz_iters();
  for (int i = 0; i < iters; ++i) {
    Rng rng{0xBEEF + static_cast<std::uint64_t>(i)};
    std::string text = rng.bernoulli(0.5)
                           ? scenario::render_scenario(random_scenario(rng))
                           : campaign::render_campaign([&] {
                               campaign::CampaignSpec c;
                               c.base = random_scenario(rng);
                               c.churn_rates = {0.0, 0.01};
                               return c;
                             }());
    // Splice 1-3 garbage tokens at random positions.
    const int splices = static_cast<int>(rng.uniform_int(1, 3));
    for (int s = 0; s < splices; ++s) {
      const auto pos = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(text.size())));
      const char* g = garbage[rng.uniform_int(0, std::size(garbage) - 1)];
      text.insert(pos, g);
    }
    for (const bool as_campaign : {false, true}) {
      try {
        if (as_campaign)
          (void)campaign::parse_campaign(text);
        else
          (void)scenario::parse_scenario(text);
      } catch (const scenario::ScenarioError&) {
        // rejected with a diagnostic: fine
      }
    }
  }
}

}  // namespace
}  // namespace pdc
