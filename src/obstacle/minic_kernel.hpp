// The obstacle-problem kernel written in MiniC — the "input source code" of
// the dPerf pipeline (the paper analyzes the ANR CIP obstacle code written
// in C with P2PSAP communication calls; this is our equivalent).
//
// Workload parameters:
//   p2p_param(0)   = n       grid points per side (boundary included)
//   p2p_param(1)   = iters   outer iterations (fixed budget)
//   p2p_param(2)   = rcheck  residual allreduce period
//   p2p_param_f(0) = omega   relaxation factor
//   p2p_param_f(1) = force   right-hand side f
//   p2p_param_f(2) = c0      obstacle height
//   p2p_param_f(3) = c1      obstacle curvature
//
// The kernel performs the same projected Richardson iteration as
// pdc::obstacle::projected_sweep over a strip of rows, exchanging halo rows
// with both neighbours through P2PSAP each iteration and reducing the
// residual every `rcheck` iterations.
#pragma once

#include <string>

#include "dperf/tracegen.hpp"
#include "obstacle/problem.hpp"

namespace pdc::obstacle {

/// Returns the MiniC source of the distributed kernel.
const std::string& minic_kernel_source();

/// Builds the workload parameter vector for a given problem instance.
dperf::Workload kernel_workload(const ObstacleProblem& p, int iters, int rcheck);

}  // namespace pdc::obstacle
