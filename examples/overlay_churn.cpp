// Overlay resilience demo: the decentralized topology manager under churn.
// Volunteers join as trackers, peers populate zones, trackers crash and the
// line self-repairs, the server goes down and the system keeps working --
// the robustness features of paper §III-A.
//
//   $ ./overlay_churn
#include <algorithm>
#include <cstdio>

#include "net/builders.hpp"
#include "net/flow.hpp"
#include "overlay/overlay.hpp"

namespace {

using namespace pdc;

void print_line(overlay::Overlay& ov, const net::Platform& plat) {
  std::vector<overlay::TrackerActor*> alive;
  for (auto* t : ov.trackers())
    if (t->alive()) alive.push_back(t);
  std::sort(alive.begin(), alive.end(),
            [](auto* a, auto* b) { return a->ip() < b->ip(); });
  std::printf("  tracker line:");
  for (auto* t : alive)
    std::printf(" %s(zone:%zu)", plat.node(t->host()).name.c_str(), t->zone().size());
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace pdc;
  sim::Engine engine;
  const net::Platform plat = net::build_star(net::lan_spec(40));
  net::FlowNet flownet{engine, plat};
  overlay::Overlay ov{engine, plat, flownet};

  std::printf("== bootstrap: server + 3 administrator core trackers ==\n");
  ov.create_server(plat.host(0));
  overlay::TrackerActor* t1 = &ov.create_tracker(plat.host(3), true);
  ov.create_tracker(plat.host(17), true);
  ov.create_tracker(plat.host(33), true);
  ov.finish_bootstrap();
  engine.run_until(5);
  print_line(ov, plat);

  std::printf("\n== 20 peers join the overlay (routed to their closest tracker) ==\n");
  for (int i = 0; i < 20; ++i) {
    const int host = i < 10 ? 4 + i : 18 + (i - 10);  // two IP clusters
    ov.create_peer(plat.host(host), overlay::PeerResources{3e9, 1e9, 1e9});
  }
  engine.run_until(20);
  print_line(ov, plat);

  std::printf("\n== a volunteer is promoted to tracker (join protocol, Fig. 3) ==\n");
  ov.create_tracker(plat.host(30), /*core=*/false);
  engine.run_until(40);
  print_line(ov, plat);

  std::printf("\n== tracker %s crashes; direct neighbours repair the line (Fig. 4) ==\n",
              plat.node(t1->host()).name.c_str());
  t1->crash();
  engine.run_until(80);
  print_line(ov, plat);
  int rejoined = 0;
  for (auto* p : ov.peers())
    if (p->rejoin_count() > 0) ++rejoined;
  std::printf("  %d peers re-joined a neighbour zone after their tracker died\n", rejoined);

  std::printf("\n== the server disconnects; the overlay keeps accepting peers ==\n");
  ov.server()->crash();
  ov.create_peer(plat.host(39), overlay::PeerResources{3e9, 1e9, 1e9});
  engine.run_until(110);
  print_line(ov, plat);
  int joined = 0;
  for (auto* p : ov.peers())
    if (p->joined()) ++joined;
  std::printf("  %d/%zu peers hold a zone membership; control messages sent: %llu\n",
              joined, ov.peers().size(),
              static_cast<unsigned long long>(ov.ctrl_messages_sent()));
  return 0;
}
