// dPerf automatic static analysis: block decomposition + instrumentation
// (paper §III-D, "the AST representation allows dPerf to analyze the most
// basic instruction blocks in search for communication calls ... this point
// in the analysis process is responsible for inserting calls to the PAPI
// library for obtaining accurate measurement of time duration").
//
// Decomposition rules:
//  * a *block* is a maximal run of consecutive statements containing no
//    communication call anywhere inside (whole comm-free loops stay inside
//    one block — their cost scales with trip counts, which is what the
//    paper's "benchmarking by block ... scaled-up" relies on);
//  * statements containing communication are descended into (loop bodies
//    and if-branches are decomposed recursively);
//  * every outermost communication-carrying loop gets a dperf_iter_mark()
//    at the top of its body, giving the trace generator the iteration
//    boundaries it needs for scale-up.
#pragma once

#include <string>
#include <vector>

#include "minic/ast.hpp"

namespace pdc::dperf {

struct BlockInfo {
  int id = 0;
  std::string function;
  int first_line = 0;     // of the first statement in the block
  int comm_loop_depth = 0;  // 0: outside any comm loop -> executed O(1) times
};

struct InstrumentedProgram {
  minic::Program program;           // the transformed AST
  std::vector<BlockInfo> blocks;
  int iter_loops = 0;               // number of marked outer comm loops

  const BlockInfo* block(int id) const {
    for (const auto& b : blocks)
      if (b.id == id) return &b;
    return nullptr;
  }
};

/// Clones and instruments a program. The input must be semantically valid.
InstrumentedProgram instrument(const minic::Program& program);

/// True if any statement in the subtree performs communication.
bool contains_comm(const minic::Stmt& stmt);

}  // namespace pdc::dperf
