// Flow-level network model with max-min fair bandwidth sharing.
//
// Each transfer is a fluid flow along its route. Concurrent flows crossing
// the same link in the same direction share that link's capacity with
// max-min fairness (progressive filling), the same model family as
// SimGrid's default used by the paper for trace-based simulation. A flow
// first waits out the route's accumulated latency, then streams its bytes
// at the allocated rate; allocations are recomputed whenever a flow enters
// or leaves the transfer phase.
//
// Two sharing engines are provided:
//
//  * Mode::Incremental (default) — the production path. Link state lives in
//    dense per-direction records (flat vector indexed by linkdir_index),
//    and transfer flows are aggregated into *flow classes*: flows whose
//    route signatures match (see SigTok) are interchangeable under
//    progressive filling, so the solver fixes one rate per class and
//    charges each saturated link multiplicity x rate at once. A flow
//    start/completion marks only its own links dirty and the solver re-runs
//    over just the connected component of *classes* reachable from dirty
//    links. Per-flow progress is settled lazily from the class rate via a
//    credit counter (bytes served per member since class creation), and
//    projected completions sit in an indexed min-heap keyed per class. Cost
//    per reshare is O(classes x links in the affected component), not
//    O(flows x links): a shared-backbone population of N identical
//    transfers reshapes in O(1) amortized instead of O(N).
//
//  * Mode::Reference — the original full recompute over every flow per
//    reshare, kept verbatim as the correctness oracle for differential
//    tests and as the bench baseline.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/platform.hpp"
#include "sim/engine.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"
#include "support/indexed_heap.hpp"

namespace pdc::net {

using FlowId = std::uint64_t;

/// Aggregate counters for tests and benches.
struct FlowNetStats {
  std::uint64_t flows_started = 0;
  std::uint64_t flows_completed = 0;
  double bytes_completed = 0;
  std::uint64_t reshares = 0;
  /// Reshares that re-solved a strict subset of the live transfer flows
  /// (incremental mode only; the reference oracle always re-solves all).
  std::uint64_t reshares_partial = 0;
  /// Total flows whose rate was re-solved, summed over reshares. The ratio
  /// flows_rescanned / reshares is the mean affected-component size.
  std::uint64_t flows_rescanned = 0;
  /// Transfer-phase flows observed stuck at rate 0 with bytes left (each is
  /// warned once via support/log; such a flow can never complete).
  std::uint64_t flows_starved = 0;
  /// Link capacity rescale events applied (churn link degradation/restore);
  /// each one also counts as a reshare.
  std::uint64_t link_rescales = 0;
  /// Peak number of concurrently live flow classes (incremental mode only).
  /// classes_active / peak concurrent flows is the compression ratio the
  /// class solver achieved: a 10^4-flow gather through one backbone runs at
  /// classes_active == 1.
  std::uint64_t classes_active = 0;
  /// Flows that joined an already-existing class (signature match), i.e.
  /// transfers that cost O(1) instead of a fresh class setup.
  std::uint64_t class_merges = 0;
  /// Mid-transfer reclassifications: a flow left its class and re-entered
  /// another because its signature changed (a link's member count crossed
  /// the shared/private boundary, or set_link_scale changed a private
  /// link's capacity token).
  std::uint64_t class_splits = 0;
};

class FlowNet {
 public:
  enum class Mode { Incremental, Reference };

  FlowNet(sim::Engine& engine, const Platform& platform, Mode mode = Mode::Incremental);
  ~FlowNet();
  FlowNet(const FlowNet&) = delete;
  FlowNet& operator=(const FlowNet&) = delete;

  /// Starts a flow of `bytes` from `src` to `dst`; `on_complete` fires (as a
  /// posted event) when the last byte arrives. A src==dst transfer completes
  /// immediately (loopback: no modelled cost). Zero-byte flows still pay the
  /// route latency. The callback is a sim::EventFn: the capture sets the
  /// overlay and P2PSAP pass (up to a moved CtrlMsg/Message) stay inline —
  /// no per-flow closure allocation.
  FlowId start_flow(NodeIdx src, NodeIdx dst, double bytes, sim::EventFn on_complete);

  /// Awaitable wrapper around start_flow.
  sim::Task<void> transfer(NodeIdx src, NodeIdx dst, double bytes);

  std::size_t active_flows() const { return live_flows_; }
  const FlowNetStats& stats() const { return stats_; }
  Mode mode() const { return mode_; }

  /// Current max-min rate of an active flow (0 while in the latency phase);
  /// exposed for tests of the sharing model.
  double flow_rate(FlowId id) const;

  /// Rescales a link's usable bandwidth (both directions) to `scale` x the
  /// platform's modelled capacity and re-solves the affected flows — the
  /// churn subsystem's link degradation/restoration hook. Works identically
  /// in both modes, so the differential oracle covers degraded networks.
  /// `scale` must be > 0 (a dead link would starve its flows forever).
  void set_link_scale(LinkIdx link, double scale);
  double link_scale(LinkIdx link) const;

  /// Pure what-if query: the max-min fair rates a set of simultaneous flows
  /// (one per (src, dst) endpoint pair) would get on an otherwise idle
  /// network, honoring churn link rescales. Never touches live flow state —
  /// this is the analytic planner's rate oracle. Entries with src == dst get
  /// an infinite rate (local delivery costs nothing, as in start_flow).
  /// Aggregates the batch into flow classes exactly like the live
  /// incremental solver, so a 10^4-endpoint gather query solves in O(1)
  /// classes instead of O(endpoints^2).
  std::vector<double> hypothetical_rates(
      const std::vector<std::pair<NodeIdx, NodeIdx>>& endpoints) const;

 private:
  enum class Phase { Latency, Transfer };
  using Slot = std::uint32_t;
  using ClassSlot = std::uint32_t;
  static constexpr ClassSlot kNoClass = 0xffffffffu;

  /// One token of a class route signature. A hop is SHARED when its linkdir
  /// is crossed by >= 2 transfer flows — the token is the linkdir index, so
  /// class members provably contend on the very same resource — and PRIVATE
  /// when this flow is the linkdir's sole member — the token is the usable
  /// capacity, so equal-capacity private NICs are interchangeable (swapping
  /// them is an automorphism of the max-min constraint system). The private
  /// normalization is what collapses gather/scatter populations: N children
  /// streaming to one parent differ only in their private NIC, so they form
  /// one class of multiplicity N. An all-private route additionally carries
  /// a SALT token (the flow id) so flows on fully disjoint routes never
  /// merge: merging them would be rate-correct but would make the affected
  /// component (flows_rescanned, reshares_partial) drift from the flow-level
  /// truth the reference oracle and the pre-class goldens report.
  enum class TokKind : std::uint8_t { Private = 0, Shared = 1, Salt = 2 };
  struct SigTok {
    std::uint64_t v = 0;  // Shared: linkdir index; Private: capacity bits;
                          // Salt: flow id
    TokKind kind = TokKind::Private;
    bool operator==(const SigTok& o) const { return v == o.v && kind == o.kind; }
    bool operator!=(const SigTok& o) const { return !(*this == o); }
  };

  /// A lazily-pruned min-heap entry ordering class members by the credit
  /// level at which they drain. (done, id) pins the exact flow incarnation:
  /// entries whose flow left the class (or completed, or re-joined with a
  /// different done_credit) are skipped and dropped when they surface.
  struct MemberRef {
    double done = 0;
    Slot slot = 0;
    FlowId id = 0;
  };

  /// An equivalence class of transfer flows with identical route signature.
  /// All members share one max-min rate; `credit` counts the bytes served
  /// per member since the class was created, so a member with join-time
  /// residual R drains when credit reaches done_credit = credit(join) + R.
  struct FlowClass {
    std::vector<SigTok> sig;
    std::uint64_t sig_hash = 0;
    double private_min_cap = 0;  // min over PRIVATE tokens; +inf if none
    std::uint32_t mult = 0;      // member count
    double rate = 0;
    double credit = 0;  // bytes served per member, settled lazily
    Time last_touched = 0;
    /// Per SHARED sig position: index of this class's crossing entry in
    /// that linkdir's `classes` vector (back-pointer for swap-removal).
    std::vector<std::uint32_t> tally_pos;
    std::vector<MemberRef> member_heap;
    ClassSlot hash_next = kNoClass;  // intrusive hash-bucket chain
    std::uint64_t visit_epoch = 0;  // scratch: in the current affected set
    std::uint64_t fixed_epoch = 0;  // scratch: rate fixed in the current solve
    bool live = false;
  };

  struct Flow {
    FlowId id = 0;  // 0 = free slot
    double remaining = 0;  // reference mode / latency phase: bytes left
    double total_bytes = 0;
    double rate = 0;        // reference mode only; incremental reads the class
    Time last_touched = 0;  // reference mode only
    Phase phase = Phase::Latency;
    bool starve_warned = false;
    ClassSlot cls = kNoClass;     // incremental: transfer-phase class
    double done_credit = 0;       // incremental: class credit level at drain
    std::uint64_t reclass_epoch = 0;  // scratch: queued for reclassification
    std::vector<Hop> hops;
    std::vector<std::uint32_t> link_pos;  // per-hop index into LinkDir::members
    sim::EventFn on_complete;
  };

  /// One crossing of a linkdir by a transfer-phase flow; `hop` is the index
  /// into that flow's hops/link_pos, so swap-removal can fix back-pointers.
  struct LinkMember {
    Slot slot = 0;
    std::uint32_t hop = 0;
  };

  /// One crossing of a linkdir by a flow class's SHARED sig position. The
  /// class's multiplicity is the crossing count, so no count is stored.
  struct ClassCrossing {
    ClassSlot cls = 0;
    std::uint32_t sig_pos = 0;
  };

  /// Dense per-direction link record (index = linkdir_index(hop)).
  struct LinkDir {
    double capacity = 0;
    std::vector<LinkMember> members;
    std::vector<ClassCrossing> classes;  // incremental: shared-hop tallies
    bool dirty = false;
    std::uint64_t visit_epoch = 0;  // scratch: in the current component
  };

  Slot alloc_slot();
  void release_slot(Slot slot);
  void sync_linkdirs();
  void mark_dirty(std::size_t linkdir);
  void begin_transfer(Slot slot);
  void remove_membership(Slot slot);
  void warn_starved(Flow& f, double remaining);
  void on_completion_event();

  // Incremental engine: class bookkeeping plus component-local re-solve of
  // every class reachable from dirty linkdirs, then heap re-key per class.
  static std::uint64_t hash_sig(const std::vector<SigTok>& sig);
  void build_signature(const Flow& f);
  ClassSlot alloc_class();
  void classify_flow(Slot slot, double remaining, Time now);
  double leave_class(Slot slot, Time now);
  void destroy_class(ClassSlot cs);
  void settle_class(FlowClass& c, Time now);
  bool member_valid(ClassSlot cs, const MemberRef& m) const;
  Time class_completion_key(ClassSlot cs, Time now);
  void queue_reclass(Slot slot);
  void process_reclass_queue(Time now);
  void resolve_dirty();
  void rearm_completion_timer();

  // Reference oracle: the original O(flows x links) full recompute.
  void reference_reshare();
  void reference_advance_progress();
  void reference_recompute_rates();
  void reference_schedule_next_completion();
  void reference_completion_event();

  sim::Engine* engine_;
  const Platform* platform_;
  Mode mode_;

  std::vector<Flow> flows_;  // slot-map: stable slots, cache-linear iteration
  std::vector<Slot> free_slots_;
  std::unordered_map<FlowId, Slot> id_to_slot_;
  std::size_t live_flows_ = 0;      // latency + transfer phase
  std::size_t transfer_flows_ = 0;  // transfer phase only
  FlowId next_id_ = 1;

  std::vector<LinkDir> linkdirs_;
  std::vector<double> link_scales_;  // per link (not per direction), default 1
  std::vector<std::size_t> dirty_linkdirs_;

  // Class storage: slot-map plus an intrusive hash index over signatures.
  std::vector<FlowClass> classes_;
  std::vector<ClassSlot> free_classes_;
  std::unordered_map<std::uint64_t, ClassSlot> class_index_;
  std::size_t live_classes_ = 0;

  // Solver scratch, persistent to avoid per-reshare allocation. cap_/nun_
  // are linkdir-indexed and only valid for the current component.
  std::uint64_t epoch_ = 0;
  std::vector<double> cap_;
  std::vector<int> nun_;
  std::vector<std::size_t> comp_links_;
  std::vector<ClassSlot> affected_classes_;
  std::vector<ClassSlot> private_classes_;  // affected classes w/ finite private cap
  std::vector<std::size_t> bfs_stack_;
  std::vector<Slot> done_scratch_;
  std::vector<ClassSlot> popped_classes_;
  std::vector<SigTok> sig_scratch_;
  std::vector<Slot> reclass_queue_;
  std::uint64_t reclass_epoch_ = 1;

  // Key: absolute completion time of the class's earliest-draining member.
  IndexedMinHeap<Time, ClassSlot> completion_heap_;
  int timer_slot_ = -1;
  Time armed_at_ = kTimeInfinity;  // absolute time the slot is armed for

  Time last_update_ = 0;  // reference mode: global progress timestamp
  FlowNetStats stats_;
};

}  // namespace pdc::net
