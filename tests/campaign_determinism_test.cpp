// Campaign determinism across parallelism: the same CampaignSpec with fixed
// seeds must produce identical RunRecords at -j1 and -j8, compared
// field-by-field through the JSON round-trip. This is the contract that
// makes `-j` safe for the figure benches: concurrency may only change
// wall-clock, never a single recorded value.
#include <gtest/gtest.h>

#include <string>

#include "campaign/executor.hpp"
#include "expect_json_equal.hpp"

namespace pdc::campaign {
namespace {

TEST(CampaignDeterminism, SameRecordsAtJ1AndJ8) {
  CampaignSpec spec;
  spec.name = "det";
  spec.base.name = "det";
  spec.base.platform = scenario::PlatformSpec::lan();
  spec.base.run.mode = scenario::Mode::Both;  // reference + traces + replay
  spec.base.run.grid_n = 34;
  spec.base.run.iters = 6;
  spec.base.run.bench_n = 18;
  spec.base.run.bench_iters = 3;
  spec.base.run.bench_rcheck = 2;
  spec.peers = {2, 3};
  spec.seeds = {1, 2};
  spec.schemes = {p2psap::Scheme::Synchronous, p2psap::Scheme::Asynchronous};
  spec.repetitions = 2;  // 2 x 2 x 2 x 2 = 16 runs

  ExecutorOptions sequential;
  sequential.jobs = 1;
  Executor j1{spec, sequential};
  const CampaignReport r1 = j1.execute();

  ExecutorOptions parallel;
  parallel.jobs = 8;
  Executor j8{spec, parallel};
  const CampaignReport r8 = j8.execute();

  ASSERT_EQ(j1.outcomes().size(), 16u);
  ASSERT_EQ(j8.outcomes().size(), j1.outcomes().size());
  for (std::size_t i = 0; i < j1.outcomes().size(); ++i) {
    const Outcome& a = j1.outcomes()[i];
    const Outcome& b = j8.outcomes()[i];
    ASSERT_EQ(a.run.key, b.run.key);
    EXPECT_TRUE(a.ok()) << a.error;
    EXPECT_TRUE(b.ok()) << b.error;
    expect_json_equal(parse_json(a.record_json), parse_json(b.record_json), a.run.key);
    // The serialized documents are byte-identical too.
    EXPECT_EQ(a.record_json, b.record_json) << a.run.key;
  }

  // Aggregates therefore agree exactly as well.
  ASSERT_EQ(r1.points.size(), r8.points.size());
  for (std::size_t i = 0; i < r1.points.size(); ++i) {
    EXPECT_EQ(r1.points[i].key, r8.points[i].key);
    for (const auto& [metric, s] : r1.points[i].metrics) {
      const Summary& t = r8.points[i].metrics.at(metric);
      EXPECT_EQ(s.mean, t.mean) << r1.points[i].key << "." << metric;
      EXPECT_EQ(s.stddev, t.stddev);
      EXPECT_EQ(s.min, t.min);
      EXPECT_EQ(s.max, t.max);
    }
  }
}

}  // namespace
}  // namespace pdc::campaign
