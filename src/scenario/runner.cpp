#include "scenario/runner.hpp"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <system_error>
#include <tuple>

#include "churn/injector.hpp"
#include "dperf/analytic.hpp"
#include "net/platfile.hpp"
#include "obs/metrics.hpp"
#include "obs/publish.hpp"
#include "obs/trace.hpp"
#include "obstacle/minic_kernel.hpp"
#include "support/env.hpp"
#include "support/json.hpp"
#include "support/rng.hpp"

namespace pdc::scenario {

namespace {

// The one worker-resource policy, shared with the churn injector's
// replacement peers (see p2pdc/environment.hpp).
using p2pdc::worker_resources;

obstacle::ObstacleProblem problem_of(const RunSpec& run) {
  obstacle::ObstacleProblem p;
  p.n = run.grid_n;
  p.omega = run.omega;
  return p;
}

obstacle::ObstacleProblem bench_problem_of(const RunSpec& run) {
  obstacle::ObstacleProblem p;
  p.n = run.bench_n;
  p.omega = run.omega;
  return p;
}

obstacle::DistributedConfig config_of(const RunSpec& run) {
  obstacle::DistributedConfig cfg;
  cfg.problem = problem_of(run);
  cfg.iters = run.iters;
  cfg.rcheck = run.rcheck;
  cfg.mode = obstacle::ValueMode::Phantom;
  cfg.scheme = run.scheme;
  cfg.allocation = run.allocation;
  cfg.cmax = run.cmax;
  return cfg;
}

/// Boots one worker host: a full PeerActor by default, or — under `boot
/// lazy` — a passive overlay registration with no actor, no mailboxes and
/// no idle events (the 10^5..10^6-peer lever; see
/// Overlay::register_passive_peer). Trackers must already be booted.
void boot_worker(Deployment& d, const RunSpec& run, net::NodeIdx h) {
  if (run.lazy_boot) {
    if (!d.env->boot_passive_peer(h, worker_resources(d.platform, h)))
      throw std::runtime_error("boot lazy: no tracker to register passive peers with");
  } else {
    d.env->boot_peer(h, worker_resources(d.platform, h));
  }
  d.workers.push_back(h);
}

/// Daisy deployment (paper Stage-2A): server and one tracker per petal at
/// petal boundaries, submitter next to the server, workers spread across
/// the whole desktop grid, seed-deterministic.
void deploy_daisy(Deployment& d, const net::DaisySpec& spec, const RunSpec& run) {
  const int hosts = d.platform.host_count();
  d.env->boot_server(d.platform.host(0));
  const int per_petal = hosts / spec.central_routers;
  std::vector<int> used{0};
  for (int p = 0; p < spec.central_routers; ++p) {
    const int idx = p * per_petal + 1;
    d.env->boot_tracker(d.platform.host(idx), /*core=*/true);
    used.push_back(idx);
  }
  const int submitter_idx = 2;
  used.push_back(submitter_idx);
  d.submitter = d.platform.host(submitter_idx);
  d.env->boot_peer(d.submitter, worker_resources(d.platform, d.submitter));
  const int stride = hosts / run.peers;
  int placed = 0;
  for (int k = 0; placed < run.peers && k < hosts; ++k) {
    int idx = (3 + k * stride) % hosts;
    while (std::find(used.begin(), used.end(), idx) != used.end()) idx = (idx + 1) % hosts;
    used.push_back(idx);
    boot_worker(d, run, d.platform.host(idx));
    ++placed;
  }
}

/// Federation deployment: administrator roles on the first three hosts
/// (site-major order), workers round-robined across sites so a multi-site
/// run actually crosses the WAN.
void deploy_federation(Deployment& d, const net::FederationSpec& spec, const RunSpec& run) {
  const int per_site = spec.hosts_per_cluster;
  if (d.platform.host_count() < run.peers + 3)
    throw std::runtime_error("federation platform has " +
                             std::to_string(d.platform.host_count()) + " hosts, run needs " +
                             std::to_string(run.peers + 3));
  d.env->boot_server(d.platform.host(0));
  d.env->boot_tracker(d.platform.host(1), /*core=*/true);
  d.submitter = d.platform.host(2);
  d.env->boot_peer(d.submitter, worker_resources(d.platform, d.submitter));
  // Per-site cursors start past the three admin hosts, which occupy global
  // indices 0..2 and may spill across sites when sites are small.
  std::vector<int> cursor(static_cast<std::size_t>(spec.clusters), 0);
  for (int s = 0; s < spec.clusters; ++s)
    cursor[static_cast<std::size_t>(s)] = std::clamp(3 - s * per_site, 0, per_site);
  for (int placed = 0, site = 0; placed < run.peers;) {
    const auto s = static_cast<std::size_t>(site);
    if (cursor[s] < per_site) {
      const int idx = site * per_site + cursor[s]++;
      boot_worker(d, run, d.platform.host(idx));
      ++placed;
    } else if (std::all_of(cursor.begin(), cursor.end(),
                           [&](int c) { return c >= per_site; })) {
      throw std::runtime_error("federation platform too small for the run");
    }
    site = (site + 1) % spec.clusters;
  }
}

/// Default deployment: server first, then `run.trackers` core trackers
/// spread across the host (= IP) range so zones stay balanced under the
/// overlay's IP-proximity join; submitter and workers fill the remaining
/// hosts in index order. With trackers=1 this is the historical layout —
/// server, tracker, submitter, workers on hosts 0, 1, 2, 3...
void deploy_sequential(Deployment& d, const RunSpec& run) {
  const int trackers = std::max(1, run.trackers);
  const int hosts = d.platform.host_count();
  const int needed = run.peers + 2 + trackers;
  if (hosts < needed)
    throw std::runtime_error("platform has " + std::to_string(hosts) +
                             " hosts, run needs " + std::to_string(needed));
  std::vector<char> used(static_cast<std::size_t>(hosts), 0);
  d.env->boot_server(d.platform.host(0));
  used[0] = 1;
  for (int t = 0; t < trackers; ++t) {
    int idx = 1 + static_cast<int>(static_cast<long long>(t) * (hosts - 1) / trackers);
    while (used[static_cast<std::size_t>(idx)]) idx = (idx + 1) % hosts;
    used[static_cast<std::size_t>(idx)] = 1;
    d.env->boot_tracker(d.platform.host(idx), /*core=*/true);
  }
  int cursor = 0;
  auto next_free = [&] {
    while (used[static_cast<std::size_t>(cursor)]) ++cursor;
    used[static_cast<std::size_t>(cursor)] = 1;
    return cursor;
  };
  // The submitter stays a full PeerActor even under `boot lazy`: peer
  // collection and result gathering run on it.
  d.submitter = d.platform.host(next_free());
  d.env->boot_peer(d.submitter, worker_resources(d.platform, d.submitter));
  for (int placed = 0; placed < run.peers; ++placed)
    boot_worker(d, run, d.platform.host(next_free()));
}

/// Federation sizing shared by build_platform and deploy: auto-size sites
/// so `peers` workers plus the three admin hosts (and churn provisioning)
/// fit.
net::FederationSpec sized_federation(const net::FederationSpec& spec, const RunSpec& run,
                                     int extra_hosts = 0) {
  net::FederationSpec sized = spec;
  if (sized.hosts_per_cluster <= 0)
    sized.hosts_per_cluster =
        (run.peers + 3 + extra_hosts + sized.clusters - 1) / sized.clusters;
  return sized;
}

/// Failover trackers booted alongside the paper deployment when churn is
/// enabled, so peers orphaned by a tracker crash have neighbour zones to
/// re-join (and the injector has crashable trackers that never take the
/// overlay below one).
constexpr int kChurnFailoverTrackers = 2;

/// Churn host provisioning for one run: failover trackers plus one spare
/// host per join event in the expanded timeline.
int churn_extra_hosts(const std::vector<churn::ChurnEvent>& timeline) {
  int joins = 0;
  for (const churn::ChurnEvent& ev : timeline)
    if (ev.kind == churn::ChurnEvent::Kind::PeerJoin) ++joins;
  return kChurnFailoverTrackers + joins;
}

void phase_json(JsonWriter& w, const PhaseRecord& ph, bool with_iterations) {
  // The subsystem blocks are rendered *from* the metrics registry: the
  // publish_* bridges (obs/publish.cpp) register every field in the
  // historical order, so this stays byte-identical to the hand-written
  // writer it replaced — the golden record tests prove it.
  obs::Registry reg;
  obs::publish_flownet(reg, ph.net);
  obs::publish_routes(reg, ph.routes);
  obs::publish_engine(reg, ph.engine);
  if (ph.churn) obs::publish_churn(reg, *ph.churn);
  w.begin_object();
  w.kv("solve_seconds", ph.solve_seconds);
  w.kv("total_seconds", ph.total_seconds);
  if (with_iterations) w.kv("iterations", ph.iterations);
  w.key("computation").begin_object();
  w.kv("peers", ph.computation.peers);
  w.kv("groups", ph.computation.groups);
  w.kv("collection_seconds", ph.computation.collection_time());
  w.kv("allocation_seconds", ph.computation.allocation_time());
  w.kv("total_seconds", ph.computation.total_time());
  w.end_object();
  w.key("flownet").begin_object();
  reg.json_fields(w, "flownet");
  w.end_object();
  w.key("routes").begin_object();
  reg.json_fields(w, "routes");
  w.end_object();
  w.key("engine").begin_object();
  reg.json_fields(w, "engine");
  w.end_object();
  if (ph.churn) {
    w.key("churn").begin_object();
    reg.json_fields(w, "churn");
    w.end_object();
  }
  w.end_object();
}

/// Fault injector over a fresh deployment when the spec churns. The caller
/// must arm() it from its final storage: arming registers engine callbacks
/// that capture the injector's address.
std::optional<churn::Injector> make_injector(Deployment& d, const RunSpec& run) {
  if (!run.churn.enabled()) return std::nullopt;
  return churn::Injector(*d.env, d.workers, d.crashable_trackers, d.spare_hosts,
                         d.churn_timeline, churn::injection_seed(run.churn, run.seed));
}

/// Post-phase churn observability: injector counters, submissions used, and
/// the zone failovers the overlay performed.
ChurnPhaseRecord churn_phase_record(const Deployment& d, const churn::Injector& injector,
                                    int attempts) {
  ChurnPhaseRecord rec;
  rec.stats = injector.stats();
  rec.attempts = attempts;
  for (const overlay::PeerActor* p : d.env->over().peers())
    rec.rejoins += p->rejoin_count();
  return rec;
}

}  // namespace

net::Platform build_platform(const PlatformSpec& spec, const RunSpec& run,
                             int extra_hosts) {
  const int needed = run.peers + 2 + std::max(1, run.trackers) + extra_hosts;
  if (const auto* s = std::get_if<net::StarSpec>(&spec.spec)) {
    net::StarSpec sized = *s;
    if (sized.hosts <= 0) sized.hosts = needed;
    return net::build_star(sized);
  }
  if (const auto* s = std::get_if<net::DaisySpec>(&spec.spec)) {
    Rng rng{run.seed};
    return net::build_daisy(*s, rng);
  }
  if (const auto* s = std::get_if<net::FederationSpec>(&spec.spec))
    return net::build_federation(sized_federation(*s, run, extra_hosts));
  if (const auto* s = std::get_if<net::WanSpec>(&spec.spec)) {
    net::WanSpec sized = *s;
    if (sized.hosts <= 0) sized.hosts = needed;
    Rng rng{run.seed};
    return net::build_wan(sized, rng);
  }
  if (const auto* s = std::get_if<net::ScaleFreeSpec>(&spec.spec)) {
    net::ScaleFreeSpec sized = *s;
    if (sized.hosts <= 0) sized.hosts = needed;
    Rng rng{run.seed};
    return net::build_scale_free(sized, rng);
  }
  if (const auto* s = std::get_if<net::SmallWorldSpec>(&spec.spec)) {
    net::SmallWorldSpec sized = *s;
    if (sized.hosts <= 0) sized.hosts = needed;
    Rng rng{run.seed};
    return net::build_small_world(sized, rng);
  }
  const auto& f = std::get<PlatformFileSpec>(spec.spec);
  std::string text = f.text;
  if (!f.path.empty()) {
    std::ifstream in(f.path);
    if (!in) throw std::runtime_error("cannot open platform file '" + f.path + "'");
    std::stringstream buf;
    buf << in.rdbuf();
    text = buf.str();
  }
  return net::parse_platform(text);
}

std::unique_ptr<Deployment> deploy(const PlatformSpec& spec, const RunSpec& run) {
  auto d = std::make_unique<Deployment>();
  int extra_hosts = 0;
  if (run.churn.enabled()) {
    d->churn_timeline = churn::expand_events(run.churn, run.peers, run.seed);
    extra_hosts = churn_extra_hosts(d->churn_timeline);
  }
  d->platform = build_platform(spec, run, extra_hosts);
  d->env = std::make_unique<p2pdc::Environment>(d->engine, d->platform);
  if (const auto* daisy = std::get_if<net::DaisySpec>(&spec.spec)) {
    deploy_daisy(*d, *daisy, run);
  } else if (const auto* fed = std::get_if<net::FederationSpec>(&spec.spec)) {
    deploy_federation(*d, sized_federation(*fed, run, extra_hosts), run);
  } else {
    deploy_sequential(*d, run);
  }
  if (run.churn.enabled()) {
    // The primary tracker(s) the paper deployment booted are crashable —
    // crashing one is the interesting failover case, since the zone peers
    // must re-join elsewhere.
    overlay::Overlay& over = d->env->over();
    for (const overlay::TrackerActor* t : over.trackers())
      d->crashable_trackers.push_back(t->host());
    // Churn provisioning on the hosts the paper deployment left untouched
    // (ascending index, deterministic): failover trackers join the core
    // line so orphaned peers can fail over, remaining hosts stay unbooted
    // as replacement capacity for join events. Fixed-size platforms may
    // provision less than the timeline could use; the injector then skips
    // (and counts) the events it cannot apply.
    const int joins = extra_hosts - kChurnFailoverTrackers;
    int failover_trackers = 0;
    for (int i = 0; i < d->platform.host_count(); ++i) {
      const net::NodeIdx h = d->platform.host(i);
      if (over.peer_at(h) != nullptr || over.is_passive_peer(h) ||
          over.tracker_at(h) != nullptr || over.server_host() == h)
        continue;
      if (failover_trackers < kChurnFailoverTrackers) {
        d->env->boot_tracker(h, /*core=*/true);
        d->crashable_trackers.push_back(h);
        ++failover_trackers;
      } else if (static_cast<int>(d->spare_hosts.size()) < joins) {
        d->spare_hosts.push_back(h);
      } else {
        break;
      }
    }
  }
  d->env->finish_bootstrap();
  return d;
}

namespace {

// The process-wide dPerf memos behind cost_profile() and Runner::traces().
// Named stores (instead of function-local statics) so memo_stats() can
// report their footprint — the "hot across requests" working set the serve
// daemon exposes in its status endpoint.
struct CostMemo {
  std::mutex mutex;
  std::map<std::tuple<int, int, int, int>, obstacle::CostProfile> cache;
};
CostMemo& cost_memo() {
  static CostMemo memo;
  return memo;
}

struct TraceMemo {
  std::mutex mutex;
  std::map<std::tuple<int, int, int, int, int, double>, std::vector<dperf::Trace>> cache;
};
TraceMemo& trace_memo() {
  static TraceMemo memo;
  return memo;
}

// Trace summaries share the traces' key space (they are a pure collapse of
// the memoized trace set) and are platform-independent like them: a
// campaign sweeping platforms or churn axes in mode=analytic summarizes one
// workload once, then every grid point is just plan_on.
struct SummaryMemo {
  std::mutex mutex;
  std::map<std::tuple<int, int, int, int, int, double>, std::vector<dperf::TraceSummary>>
      cache;
};
SummaryMemo& summary_memo() {
  static SummaryMemo memo;
  return memo;
}

}  // namespace

const obstacle::CostProfile& cost_profile(ir::OptLevel level, const RunSpec& run) {
  // Process-wide memo shared by every concurrent campaign run; the mutex
  // covers lookup and derivation (map references stay valid across inserts,
  // so returning by reference is safe after unlocking). Derivation is
  // deterministic, so serializing first-touch cannot change any result;
  // campaign::Executor pre-warms the profiles its grid needs before fanning
  // out so workers only ever hit the cached path.
  CostMemo& memo = cost_memo();
  const auto key =
      std::make_tuple(static_cast<int>(level), run.bench_n, run.bench_iters, run.bench_rcheck);
  std::lock_guard<std::mutex> lock(memo.mutex);
  auto it = memo.cache.find(key);
  if (it == memo.cache.end()) {
    it = memo.cache
             .emplace(key, obstacle::derive_cost_profile(level, bench_problem_of(run),
                                                         run.bench_iters, run.bench_rcheck))
             .first;
  }
  return it->second;
}

MemoStats memo_stats() {
  MemoStats s;
  {
    CostMemo& memo = cost_memo();
    std::lock_guard<std::mutex> lock(memo.mutex);
    s.cost_profiles = memo.cache.size();
    s.cost_profile_bytes = memo.cache.size() * sizeof(obstacle::CostProfile);
  }
  {
    TraceMemo& memo = trace_memo();
    std::lock_guard<std::mutex> lock(memo.mutex);
    s.trace_sets = memo.cache.size();
    for (const auto& [key, traces] : memo.cache) {
      (void)key;
      for (const dperf::Trace& t : traces)
        s.trace_bytes += sizeof(dperf::Trace) + t.events.capacity() * sizeof(dperf::TraceEvent);
    }
  }
  return s;
}

std::unique_ptr<Deployment> Runner::deploy() const {
  return scenario::deploy(spec_.platform, spec_.run);
}

std::vector<dperf::Trace> Runner::traces() const {
  // Traces depend only on these run fields — never on the platform — so a
  // campaign replaying one workload across a platform axis reuses one trace
  // set instead of re-running the dPerf pipeline per grid cell. Memoized
  // like cost_profile above: mutex-guarded, deterministic derivation;
  // campaign::Executor pre-warms the keys its grid needs (mirroring this
  // tuple) so pooled workers never serialize on a derivation.
  const RunSpec& run = spec_.run;
  TraceMemo& memo = trace_memo();
  const auto key = std::make_tuple(static_cast<int>(run.level), run.rcheck, run.grid_n,
                                   run.iters, run.rank_count(), run.omega);
  std::lock_guard<std::mutex> lock(memo.mutex);
  auto it = memo.cache.find(key);
  if (it == memo.cache.end()) {
    dperf::DperfOptions opt;
    opt.level = run.level;
    opt.chunk = run.rcheck;
    opt.sample_iters = 3 * run.rcheck;
    const dperf::Dperf pipeline{obstacle::minic_kernel_source(), opt};
    it = memo.cache
             .emplace(key, pipeline.traces(obstacle::kernel_workload(problem_of(run),
                                                                     run.iters, run.rcheck),
                                           run.rank_count()))
             .first;
  }
  return it->second;
}

PhaseRecord Runner::run_reference() const {
  const RunSpec& run = spec_.run;
  obs::TraceRecorder* tr = obs::trace();
  if (tr) tr->begin_phase("reference");
  auto d = deploy();
  std::optional<churn::Injector> injector = make_injector(*d, run);
  if (injector) injector->arm();
  obstacle::DistributedConfig cfg = config_of(run);
  cfg.cost = cost_profile(run.level, run);
  // Under churn a submission can abort (a rank's host crashed) or find too
  // few peers (crashed ones expired, replacements still joining): re-submit
  // on the same deployment — the overlay heals, released survivors and
  // joined replacements are collected again — up to the spec's budget.
  const int max_attempts = run.churn.enabled() ? std::max(1, run.churn.max_attempts) : 1;
  if (tr)
    tr->span_begin(tr->track("run"), "reference", d->engine.now(),
                   {{"peers", run.peers}, {"ranks", run.rank_count()}});
  obstacle::SolveReport rep;
  int attempts = 0;
  do {
    ++attempts;
    rep = obstacle::run_distributed(*d->env, d->submitter, cfg, run.rank_count());
  } while (!rep.ok && attempts < max_attempts);
  if (tr) tr->span_end(tr->track("run"), d->engine.now());
  if (!rep.ok)
    throw std::runtime_error("reference run failed (" + spec_.name + ") after " +
                             std::to_string(attempts) + " attempt(s): " + rep.failure);
  PhaseRecord ph;
  ph.solve_seconds = rep.solve_seconds;
  ph.total_seconds = rep.computation.total_time();
  ph.iterations = rep.iterations;
  ph.platform_hosts = d->platform.host_count();
  ph.computation = rep.computation;
  ph.net = d->env->flownet().stats();
  ph.routes = d->platform.route_stats();
  ph.engine = d->engine.stats();
  if (injector) ph.churn = churn_phase_record(*d, *injector, attempts);
  return ph;
}

PhaseRecord Runner::run_predicted(std::vector<dperf::Trace> traces) const {
  const RunSpec& run = spec_.run;
  obs::TraceRecorder* tr = obs::trace();
  if (tr) tr->begin_phase("predicted");
  auto d = deploy();
  // The prediction replays under the *identical* expanded event stream as
  // the reference (same timeline, same injection seed), so mode=both
  // measures prediction accuracy under churn, not under different luck.
  std::optional<churn::Injector> injector = make_injector(*d, run);
  if (injector) injector->arm();
  obstacle::DistributedConfig cfg = config_of(run);
  const int max_attempts = run.churn.enabled() ? std::max(1, run.churn.max_attempts) : 1;
  if (tr)
    tr->span_begin(tr->track("run"), "predicted", d->engine.now(),
                   {{"peers", run.peers}, {"ranks", run.rank_count()}});
  dperf::Prediction pred;
  int attempts = 0;
  do {
    ++attempts;
    // Copy the traces only while a retry might still need them; the final
    // permitted attempt (the only one, without churn) moves them.
    if (attempts >= max_attempts)
      pred = dperf::replay_on(*d->env, d->submitter,
                              obstacle::make_task_spec(cfg, run.rank_count()),
                              std::move(traces));
    else
      pred = dperf::replay_on(*d->env, d->submitter,
                              obstacle::make_task_spec(cfg, run.rank_count()), traces);
  } while (!pred.computation.ok && attempts < max_attempts);
  if (tr) tr->span_end(tr->track("run"), d->engine.now());
  if (!pred.computation.ok)
    throw std::runtime_error("prediction replay failed (" + spec_.name + ") after " +
                             std::to_string(attempts) +
                             " attempt(s): " + pred.computation.failure);
  PhaseRecord ph;
  ph.solve_seconds = pred.solve_seconds;
  ph.total_seconds = pred.total_seconds;
  ph.platform_hosts = d->platform.host_count();
  ph.computation = pred.computation;
  ph.net = d->env->flownet().stats();
  ph.routes = d->platform.route_stats();
  ph.engine = d->engine.stats();
  if (injector) ph.churn = churn_phase_record(*d, *injector, attempts);
  return ph;
}

PhaseRecord Runner::run_analytic(const std::vector<dperf::Trace>& traces) const {
  const RunSpec& run = spec_.run;
  obs::TraceRecorder* tr = obs::trace();
  if (tr) tr->begin_phase("analytic");
  // A deployment supplies the platform, the booted overlay (tracker lists
  // for the collection model) and the worker placement — but the planner
  // runs zero simulation on it: no events, no flows, no churn injection
  // (the injector is never armed; the plan prices the churn-free baseline).
  // Workers boot lazily regardless of the spec's knob: passive registration
  // yields the identical placement without simulating any peer actors, so
  // the deployment cost stays out of the plan's per-grid-point budget.
  RunSpec lazy = run;
  lazy.lazy_boot = true;
  auto d = scenario::deploy(spec_.platform, lazy);
  obstacle::DistributedConfig cfg = config_of(run);
  if (tr)
    tr->span_begin(tr->track("run"), "analytic", d->engine.now(),
                   {{"peers", run.peers}, {"ranks", run.rank_count()}});
  std::vector<dperf::TraceSummary> summaries;
  {
    SummaryMemo& memo = summary_memo();
    const auto key = std::make_tuple(static_cast<int>(run.level), run.rcheck, run.grid_n,
                                     run.iters, run.rank_count(), run.omega);
    std::lock_guard<std::mutex> lock(memo.mutex);
    auto it = memo.cache.find(key);
    if (it == memo.cache.end()) {
      std::vector<dperf::TraceSummary> fresh;
      fresh.reserve(traces.size());
      for (const dperf::Trace& t : traces) fresh.push_back(dperf::summarize_trace(t));
      it = memo.cache.emplace(key, std::move(fresh)).first;
    }
    summaries = it->second;
  }
  const dperf::AnalyticReport rep =
      dperf::plan_on(*d->env, d->submitter, obstacle::make_task_spec(cfg, run.rank_count()),
                     summaries, d->workers);
  if (tr) tr->span_end(tr->track("run"), d->engine.now());
  if (!rep.ok)
    throw std::runtime_error("analytic plan failed (" + spec_.name + "): " + rep.failure);
  PhaseRecord ph;
  ph.solve_seconds = rep.solve_seconds;
  ph.total_seconds = rep.total_seconds;
  ph.platform_hosts = d->platform.host_count();
  // Synthetic computation milestones on the planner's clock (t_submit = 0),
  // so collection_time()/allocation_time()/total_time() read as usual.
  ph.computation.ok = true;
  ph.computation.peers = rep.peers;
  ph.computation.groups = rep.groups;
  ph.computation.t_submit = 0;
  ph.computation.t_collected = rep.collection_seconds;
  ph.computation.t_allocated = rep.collection_seconds + rep.allocation_seconds;
  ph.computation.t_finished = rep.total_seconds;
  ph.net = d->env->flownet().stats();
  ph.routes = d->platform.route_stats();
  ph.engine = d->engine.stats();
  return ph;
}

RunRecord Runner::run_phases(const char*& phase) const {
  if (spec_.run.ranks > spec_.run.peers)
    throw std::runtime_error("ranks (" + std::to_string(spec_.run.ranks) +
                             ") exceed peers (" + std::to_string(spec_.run.peers) + ")");
  // Tracing: the spec's `trace <path>` knob wins; PDC_TRACE_DIR supplies a
  // per-scenario default. The recorder is installed for this thread only —
  // parallel campaign workers each scope their own run — and the file is
  // written after the phases complete (failed runs leave no trace file).
  std::string trace_path = spec_.run.trace_path;
  if (trace_path.empty()) {
    const std::string dir = env_str("PDC_TRACE_DIR");
    if (!dir.empty()) {
      // The env knob names a directory we compose the filename into, so
      // create it here; an explicit `trace <path>` keeps strict semantics.
      std::filesystem::create_directories(dir);
      trace_path = dir + "/" + spec_.name + ".trace.json";
    }
  }
  std::unique_ptr<obs::TraceRecorder> recorder;
  std::optional<obs::TraceScope> scope;
  if (!trace_path.empty()) {
    recorder = std::make_unique<obs::TraceRecorder>();
    scope.emplace(recorder.get());
  }
  RunRecord rec;
  rec.spec = spec_;
  rec.platform_kind = spec_.platform.kind();
  rec.platform_label = spec_.platform.label;
  const Mode mode = spec_.run.mode;
  if (mode == Mode::Reference || mode == Mode::Both) {
    phase = "reference";
    rec.reference = run_reference();
  }
  if (mode == Mode::Predict || mode == Mode::Both) {
    phase = "traces";
    std::vector<dperf::Trace> tr = traces();
    phase = "predicted";
    rec.predicted = run_predicted(std::move(tr));
  }
  if (mode == Mode::Analytic || mode == Mode::BothAnalytic) {
    phase = "traces";
    std::vector<dperf::Trace> tr = traces();
    if (mode == Mode::BothAnalytic) {
      phase = "predicted";
      rec.predicted = run_predicted(tr);
    }
    phase = "analytic";
    rec.analytic = run_analytic(tr);
  }
  if (recorder) {
    phase = "trace";
    recorder->write(trace_path);
  }
  phase = "record";
  rec.platform_hosts = rec.reference  ? rec.reference->platform_hosts
                       : rec.predicted ? rec.predicted->platform_hosts
                                       : rec.analytic->platform_hosts;
  if (rec.reference && rec.predicted && rec.reference->solve_seconds > 0)
    rec.prediction_error =
        std::abs(rec.predicted->solve_seconds - rec.reference->solve_seconds) /
        rec.reference->solve_seconds;
  if (rec.analytic && rec.predicted && rec.predicted->solve_seconds > 0)
    rec.analytic_error =
        std::abs(rec.analytic->solve_seconds - rec.predicted->solve_seconds) /
        rec.predicted->solve_seconds;
  return rec;
}

RunRecord Runner::run() const {
  const char* phase = "setup";
  return run_phases(phase);
}

RunRecord Runner::try_run() const noexcept {
  // Phases run one at a time so the error can name the one that failed —
  // and resource-exhaustion escapes (std::bad_alloc from a huge platform,
  // std::system_error from the OS) are captured as text like any other
  // failure: a churn-induced mid-run abort must yield a record, never a
  // dead campaign worker.
  const char* phase = "setup";
  try {
    return run_phases(phase);
  } catch (...) {
    RunRecord rec;
    rec.spec = spec_;
    rec.platform_kind = spec_.platform.kind();
    rec.platform_label = spec_.platform.label;
    try {
      throw;
    } catch (const std::bad_alloc&) {
      rec.error = std::string("[") + phase + "] out of memory (std::bad_alloc)";
    } catch (const std::system_error& e) {
      rec.error = std::string("[") + phase + "] system error: " + e.what();
    } catch (const std::exception& e) {
      rec.error = std::string("[") + phase + "] " + e.what();
    } catch (...) {
      rec.error = std::string("[") + phase + "] unknown error";
    }
    return rec;
  }
}

std::string RunRecord::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.kv("scenario", spec.name);
  // The complete canonical spec text: the record's identity. Campaign
  // resume compares it against the expected spec, so editing *any* base
  // parameter — including a variant's platform key=values or inline
  // platform text — invalidates old records. (Platform files are
  // identified by path; edits to the file's contents are not detected.)
  w.kv("spec", render_scenario(spec));
  w.key("platform").begin_object();
  w.kv("kind", platform_kind);
  w.kv("label", platform_label);
  w.kv("hosts", platform_hosts);
  w.end_object();
  w.key("run").begin_object();
  w.kv("peers", spec.run.peers);
  w.kv("ranks", spec.run.rank_count());
  w.kv("opt", ir::opt_level_name(spec.run.level));
  w.kv("mode", mode_name(spec.run.mode));
  w.kv("alloc", spec.run.allocation == p2pdc::AllocationMode::Hierarchical ? "hierarchical"
                                                                           : "flat");
  w.kv("scheme", spec.run.scheme == p2psap::Scheme::Synchronous ? "sync" : "async");
  w.kv("seed", spec.run.seed);
  w.kv("grid", spec.run.grid_n);
  w.kv("iters", spec.run.iters);
  w.kv("rcheck", spec.run.rcheck);
  w.kv("bench_n", spec.run.bench_n);
  w.kv("bench_iters", spec.run.bench_iters);
  w.kv("bench_rcheck", spec.run.bench_rcheck);
  w.kv("omega", spec.run.omega);
  w.kv("cmax", spec.run.cmax);
  w.kv("boot", spec.run.lazy_boot ? "lazy" : "eager");
  w.kv("trackers", spec.run.trackers);
  w.end_object();
  if (reference) {
    w.key("reference");
    phase_json(w, *reference, /*with_iterations=*/true);
  }
  if (predicted) {
    w.key("predicted");
    phase_json(w, *predicted, /*with_iterations=*/false);
  }
  if (analytic) {
    w.key("analytic");
    phase_json(w, *analytic, /*with_iterations=*/false);
  }
  if (prediction_error) w.kv("prediction_error", *prediction_error);
  if (analytic_error) w.kv("analytic_error", *analytic_error);
  if (!error.empty()) w.kv("error", error);
  w.end_object();
  return w.str() + "\n";
}

}  // namespace pdc::scenario
