// The unparser: turns an AST back into MiniC source text. dPerf uses it
// after instrumentation ("once all transformations at AST level are made,
// dPerf unparses the modified AST into a source code of the same
// programming language as the input one", paper §III-D). unparse(parse(s))
// is a fixpoint up to whitespace.
#pragma once

#include <string>

#include "minic/ast.hpp"

namespace pdc::minic {

std::string unparse(const Program& program);
std::string unparse_expr(const Expr& e);

}  // namespace pdc::minic
