// Three-address intermediate representation.
//
// Virtual registers are function-frame locals: a register may be assigned
// in several basic blocks and read after a control-flow join (no SSA, no
// phi nodes). At -O0, every named scalar variable lives in a memory slot
// accessed through LoadVar/StoreVar — exactly the spilled code GCC -O0
// emits; the PromoteVars pass (enabled from -O1) rewrites slots into
// dedicated registers, which is the biggest single win, as in real
// compilers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pdc::ir {

enum class Op {
  // constants & moves
  ConstI, ConstF, Mov,
  // integer arithmetic
  AddI, SubI, MulI, DivI, ModI, NegI,
  // float arithmetic
  AddF, SubF, MulF, DivF, NegF,
  // comparisons (result: I64 0/1)
  LtI, LeI, GtI, GeI, EqI, NeI,
  LtF, LeF, GtF, GeF, EqF, NeF,
  // logic on 0/1 ints
  NotI, BoolI,  // BoolI: dst = (a != 0)
  // conversions
  I2F,
  // scalar variable slots (memory at -O0)
  LoadVar, StoreVar,
  // arrays
  AllocArr, LoadIdx, StoreIdx, ArrLen,
  // control flow (terminators)
  Jump, CJump, Ret,
  // calls
  Call,
  // instrumentation markers (vPAPI)
  BlockBegin, BlockEnd, IterMark,
};

const char* op_name(Op op);
bool is_terminator(Op op);
/// Pure operations have no side effects and produce dst solely from
/// operands (candidates for folding, CSE, DCE, LICM).
bool is_pure(Op op);

enum class IrType { I64, F64 };

struct Instr {
  Op op;
  IrType type = IrType::I64;  // result type where applicable
  int dst = -1;               // virtual register
  int a = -1, b = -1;         // operand registers
  long long imm_i = 0;        // ConstI
  double imm_f = 0;           // ConstF
  int slot = -1;              // LoadVar/StoreVar scalar slot, Alloc/*Idx array slot
  std::string sym;            // call target / diagnostics
  std::vector<int> args;      // call argument registers
  int t1 = -1, t2 = -1;       // Jump: t1; CJump: t1 (true), t2 (false)
};

struct BasicBlock {
  int id = 0;
  std::vector<Instr> instrs;  // last one is the terminator

  const Instr& terminator() const { return instrs.back(); }
};

/// A scalar variable slot (memory home of a named variable at -O0).
struct VarSlot {
  std::string name;
  IrType type = IrType::I64;
  bool is_param = false;
  int param_index = -1;
};

/// An array slot: created by AllocArr or bound to an array parameter.
struct ArrSlot {
  std::string name;
  IrType elem = IrType::F64;
  bool is_param = false;
  int param_index = -1;
};

struct IrFunction {
  std::string name;
  bool returns_value = false;
  IrType ret_type = IrType::I64;
  int num_params = 0;
  std::vector<VarSlot> var_slots;
  std::vector<ArrSlot> arr_slots;
  std::vector<BasicBlock> blocks;  // entry is blocks[0]
  int num_regs = 0;

  int new_reg() { return num_regs++; }
  std::string to_string() const;

  /// Successor block ids of block `b`.
  std::vector<int> successors(int b) const;
  /// Total instruction count (static size; the Os pipeline minimizes it).
  std::size_t instr_count() const;
};

struct IrProgram {
  std::vector<IrFunction> functions;

  IrFunction* find(const std::string& name);
  const IrFunction* find(const std::string& name) const;
  std::string to_string() const;
  std::size_t instr_count() const;
};

}  // namespace pdc::ir
