#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

namespace pdc {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(n_);
  const auto n2 = static_cast<double>(other.n_);
  const double n = n1 + n2;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  mean_ = (n1 * mean_ + n2 * other.mean_) / n;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double quantile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  if (p <= 0) return samples.front();
  if (p >= 1) return samples.back();
  const double pos = p * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= samples.size()) return samples.back();
  return samples[lo] * (1.0 - frac) + samples[lo + 1] * frac;
}

}  // namespace pdc
