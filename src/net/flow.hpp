// Flow-level network model with max-min fair bandwidth sharing.
//
// Each transfer is a fluid flow along its route. Concurrent flows crossing
// the same link in the same direction share that link's capacity with
// max-min fairness (progressive filling), the same model family as
// SimGrid's default used by the paper for trace-based simulation. A flow
// first waits out the route's accumulated latency, then streams its bytes
// at the allocated rate; allocations are recomputed whenever a flow enters
// or leaves the transfer phase.
//
// Two sharing engines are provided:
//
//  * Mode::Incremental (default) — the production path. Link state lives in
//    dense per-direction records (flat vector indexed by linkdir_index);
//    a flow start/completion marks only its own links dirty, and the solver
//    re-runs progressive filling over just the connected component of flows
//    reachable from dirty links. Flow progress is settled lazily per flow
//    (last_touched timestamp), and projected completion times sit in an
//    indexed min-heap so a reshare re-keys only re-rated flows. Cost per
//    reshare is O(affected component), not O(all flows × all links).
//
//  * Mode::Reference — the original full recompute over every flow per
//    reshare, kept verbatim as the correctness oracle for differential
//    tests and as the bench baseline.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "net/platform.hpp"
#include "sim/engine.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"
#include "support/indexed_heap.hpp"

namespace pdc::net {

using FlowId = std::uint64_t;

/// Aggregate counters for tests and benches.
struct FlowNetStats {
  std::uint64_t flows_started = 0;
  std::uint64_t flows_completed = 0;
  double bytes_completed = 0;
  std::uint64_t reshares = 0;
  /// Reshares that re-solved a strict subset of the live transfer flows
  /// (incremental mode only; the reference oracle always re-solves all).
  std::uint64_t reshares_partial = 0;
  /// Total flows whose rate was re-solved, summed over reshares. The ratio
  /// flows_rescanned / reshares is the mean affected-component size.
  std::uint64_t flows_rescanned = 0;
  /// Transfer-phase flows observed stuck at rate 0 with bytes left (each is
  /// warned once via support/log; such a flow can never complete).
  std::uint64_t flows_starved = 0;
  /// Link capacity rescale events applied (churn link degradation/restore);
  /// each one also counts as a reshare.
  std::uint64_t link_rescales = 0;
};

class FlowNet {
 public:
  enum class Mode { Incremental, Reference };

  FlowNet(sim::Engine& engine, const Platform& platform, Mode mode = Mode::Incremental);
  ~FlowNet();
  FlowNet(const FlowNet&) = delete;
  FlowNet& operator=(const FlowNet&) = delete;

  /// Starts a flow of `bytes` from `src` to `dst`; `on_complete` fires (as a
  /// posted event) when the last byte arrives. A src==dst transfer completes
  /// immediately (loopback: no modelled cost). Zero-byte flows still pay the
  /// route latency. The callback is a sim::EventFn: the capture sets the
  /// overlay and P2PSAP pass (up to a moved CtrlMsg/Message) stay inline —
  /// no per-flow closure allocation.
  FlowId start_flow(NodeIdx src, NodeIdx dst, double bytes, sim::EventFn on_complete);

  /// Awaitable wrapper around start_flow.
  sim::Task<void> transfer(NodeIdx src, NodeIdx dst, double bytes);

  std::size_t active_flows() const { return live_flows_; }
  const FlowNetStats& stats() const { return stats_; }
  Mode mode() const { return mode_; }

  /// Current max-min rate of an active flow (0 while in the latency phase);
  /// exposed for tests of the sharing model.
  double flow_rate(FlowId id) const;

  /// Rescales a link's usable bandwidth (both directions) to `scale` x the
  /// platform's modelled capacity and re-solves the affected flows — the
  /// churn subsystem's link degradation/restoration hook. Works identically
  /// in both modes, so the differential oracle covers degraded networks.
  /// `scale` must be > 0 (a dead link would starve its flows forever).
  void set_link_scale(LinkIdx link, double scale);
  double link_scale(LinkIdx link) const;

  /// Pure what-if query: the max-min fair rates a set of simultaneous flows
  /// (one per (src, dst) endpoint pair) would get on an otherwise idle
  /// network, honoring churn link rescales. Never touches live flow state —
  /// this is the analytic planner's rate oracle. Entries with src == dst get
  /// an infinite rate (local delivery costs nothing, as in start_flow).
  std::vector<double> hypothetical_rates(
      const std::vector<std::pair<NodeIdx, NodeIdx>>& endpoints) const;

 private:
  enum class Phase { Latency, Transfer };
  using Slot = std::uint32_t;

  struct Flow {
    FlowId id = 0;  // 0 = free slot
    double remaining = 0;  // bytes left as of last_touched
    double total_bytes = 0;
    double rate = 0;
    Time last_touched = 0;
    Phase phase = Phase::Latency;
    bool starve_warned = false;
    std::uint64_t visit_epoch = 0;  // scratch: in the current affected set
    std::uint64_t fixed_epoch = 0;  // scratch: rate fixed in the current solve
    std::vector<Hop> hops;
    std::vector<std::uint32_t> link_pos;  // per-hop index into LinkDir::members
    sim::EventFn on_complete;
  };

  /// One crossing of a linkdir by a transfer-phase flow; `hop` is the index
  /// into that flow's hops/link_pos, so swap-removal can fix back-pointers.
  struct LinkMember {
    Slot slot = 0;
    std::uint32_t hop = 0;
  };

  /// Dense per-direction link record (index = linkdir_index(hop)).
  struct LinkDir {
    double capacity = 0;
    std::vector<LinkMember> members;
    bool dirty = false;
    std::uint64_t visit_epoch = 0;  // scratch: in the current component
  };

  Slot alloc_slot();
  void release_slot(Slot slot);
  void sync_linkdirs();
  void mark_dirty(std::size_t linkdir);
  void begin_transfer(Slot slot);
  void remove_membership(Slot slot);
  void settle(Flow& f, Time now);
  Time projected_completion(const Flow& f, Time now) const;
  void warn_starved(Flow& f);
  void on_completion_event();

  // Incremental engine: component-local re-solve of everything reachable
  // from dirty linkdirs, then heap re-key of the affected flows.
  void resolve_dirty();
  void rearm_completion_timer();

  // Reference oracle: the original O(flows × links) full recompute.
  void reference_reshare();
  void reference_advance_progress();
  void reference_recompute_rates();
  void reference_schedule_next_completion();
  void reference_completion_event();

  sim::Engine* engine_;
  const Platform* platform_;
  Mode mode_;

  std::vector<Flow> flows_;  // slot-map: stable slots, cache-linear iteration
  std::vector<Slot> free_slots_;
  std::unordered_map<FlowId, Slot> id_to_slot_;
  std::size_t live_flows_ = 0;      // latency + transfer phase
  std::size_t transfer_flows_ = 0;  // transfer phase only
  FlowId next_id_ = 1;

  std::vector<LinkDir> linkdirs_;
  std::vector<double> link_scales_;  // per link (not per direction), default 1
  std::vector<std::size_t> dirty_linkdirs_;

  // Solver scratch, persistent to avoid per-reshare allocation. cap_/nun_
  // are linkdir-indexed and only valid for the current component.
  std::uint64_t epoch_ = 0;
  std::vector<double> cap_;
  std::vector<int> nun_;
  std::vector<std::size_t> comp_links_;
  std::vector<Slot> affected_;
  std::vector<std::size_t> bfs_stack_;
  std::vector<Slot> done_scratch_;

  IndexedMinHeap<Time, Slot> completion_heap_;  // key: absolute completion time
  int timer_slot_ = -1;
  Time armed_at_ = kTimeInfinity;  // absolute time the slot is armed for

  Time last_update_ = 0;  // reference mode: global progress timestamp
  FlowNetStats stats_;
};

}  // namespace pdc::net
