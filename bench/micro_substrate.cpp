// Ablation A4: substrate microbenchmarks (google-benchmark) -- the raw cost
// of the simulation kernel, the flow-level network model, P2PSAP channels,
// the proximity metric and the MiniC toolchain.
#include <benchmark/benchmark.h>

#include "ir/pipeline.hpp"
#include "minic/parser.hpp"
#include "net/builders.hpp"
#include "net/flow.hpp"
#include "obstacle/minic_kernel.hpp"
#include "p2psap/p2psap.hpp"
#include "sim/mailbox.hpp"
#include "support/rng.hpp"
#include "vm/vm.hpp"

namespace {

using namespace pdc;

void BM_EngineScheduleDispatch(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine eng;
    for (int i = 0; i < 1000; ++i) eng.schedule_at(i * 0.001, [] {});
    eng.run();
    benchmark::DoNotOptimize(eng.dispatched_events());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EngineScheduleDispatch);

void BM_MailboxPingPong(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine eng;
    sim::Mailbox<int> a{eng}, b{eng};
    eng.spawn([](sim::Mailbox<int>& in, sim::Mailbox<int>& out) -> sim::Process {
      for (int i = 0; i < 500; ++i) {
        out.push(i);
        (void)co_await in.recv();
      }
    }(a, b));
    eng.spawn([](sim::Mailbox<int>& in, sim::Mailbox<int>& out) -> sim::Process {
      for (int i = 0; i < 500; ++i) {
        (void)co_await in.recv();
        out.push(i);
      }
    }(b, a));
    eng.run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_MailboxPingPong);

void BM_FlowNetContendedTransfers(benchmark::State& state) {
  const net::Platform plat = net::build_star(net::bordeplage_cluster_spec(16));
  for (auto _ : state) {
    sim::Engine eng;
    net::FlowNet netw{eng, plat};
    for (int i = 0; i < 16; ++i)
      for (int j = 0; j < 16; ++j)
        if (i != j) netw.start_flow(plat.host(i), plat.host(j), 1e5, [] {});
    eng.run();
  }
  state.SetItemsProcessed(state.iterations() * 240);
}
BENCHMARK(BM_FlowNetContendedTransfers);

void BM_DaisyRouteComputation(benchmark::State& state) {
  net::DaisySpec spec;
  Rng rng{42};
  const net::Platform plat = net::build_daisy(spec, rng);
  int i = 0;
  for (auto _ : state) {
    const auto& r = plat.route(plat.host(i % 1024), plat.host((i * 37 + 511) % 1024));
    benchmark::DoNotOptimize(r.hops.size());
    ++i;
  }
}
BENCHMARK(BM_DaisyRouteComputation);

void BM_P2psapSyncMessage(benchmark::State& state) {
  const net::Platform plat = net::build_star(net::bordeplage_cluster_spec(2));
  for (auto _ : state) {
    sim::Engine eng;
    net::FlowNet netw{eng, plat};
    p2psap::Fabric fabric{eng, netw, plat};
    auto& ch = fabric.channel(plat.host(0), plat.host(1), p2psap::Scheme::Synchronous);
    eng.spawn([](p2psap::Channel& c, const net::Platform& p) -> sim::Process {
      for (int i = 0; i < 100; ++i) co_await c.send(p.host(0), 1, 8192);
    }(ch, plat));
    eng.spawn([](p2psap::Channel& c, const net::Platform& p) -> sim::Process {
      for (int i = 0; i < 100; ++i) (void)co_await c.recv(p.host(1), 1);
    }(ch, plat));
    eng.run();
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_P2psapSyncMessage);

void BM_IpPrefixProximity(benchmark::State& state) {
  Rng rng{3};
  std::vector<Ipv4> addrs;
  for (int i = 0; i < 1024; ++i) addrs.emplace_back(static_cast<std::uint32_t>(rng.next_u64()));
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        common_prefix_len(addrs[static_cast<std::size_t>(i % 1024)],
                          addrs[static_cast<std::size_t>((i * 7 + 13) % 1024)]));
    ++i;
  }
}
BENCHMARK(BM_IpPrefixProximity);

void BM_MinicParse(benchmark::State& state) {
  const std::string& src = obstacle::minic_kernel_source();
  for (auto _ : state) {
    auto prog = minic::parse(src);
    benchmark::DoNotOptimize(prog.functions.size());
  }
}
BENCHMARK(BM_MinicParse);

void BM_MinicCompileO3(benchmark::State& state) {
  const std::string& src = obstacle::minic_kernel_source();
  for (auto _ : state) {
    auto prog = ir::compile_source(src, ir::OptLevel::O3);
    benchmark::DoNotOptimize(prog.instr_count());
  }
}
BENCHMARK(BM_MinicCompileO3);

void BM_VmDispatchThroughput(benchmark::State& state) {
  const ir::IrProgram prog = ir::compile_source(
      "int main() { int s = 0; for (int i = 0; i < 100000; i = i + 1) { s = s + i; } return s; }",
      ir::OptLevel::O2);
  for (auto _ : state) {
    vm::Vm m{prog};
    benchmark::DoNotOptimize(m.run_main());
    state.counters["instrs/s"] = benchmark::Counter(
        static_cast<double>(m.papi().instructions), benchmark::Counter::kIsRate);
  }
}
BENCHMARK(BM_VmDispatchThroughput);

}  // namespace

BENCHMARK_MAIN();
