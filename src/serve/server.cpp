#include "serve/server.hpp"

#include <chrono>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <system_error>
#include <thread>
#include <utility>
#include <vector>

#include "campaign/executor.hpp"
#include "campaign/spec.hpp"
#include "scenario/runner.hpp"
#include "support/json.hpp"
#include "support/log.hpp"
#include "support/thread_pool.hpp"

namespace pdc::serve {

namespace fs = std::filesystem;

namespace {

double elapsed_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

void write_file_atomic(const fs::path& path, const std::string& content) {
  const fs::path tmp = path.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out.write(content.data(), static_cast<std::streamsize>(content.size()));
    if (!out) throw std::runtime_error("cannot write " + tmp.string());
  }
  fs::rename(tmp, path);
}

bool read_file(const fs::path& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  out = buf.str();
  return true;
}

}  // namespace

Server::Server(ServerOptions opts)
    : opts_(std::move(opts)),
      cache_(opts_.cache_bytes),
      start_(std::chrono::steady_clock::now()) {
  if (opts_.unix_path.empty() && opts_.tcp_port < 0 && opts_.spool_dir.empty())
    throw std::invalid_argument(
        "pdc_serve needs at least one request source: unix socket, tcp port or spool");
  if (!opts_.unix_path.empty()) unix_listener_ = listen_unix(opts_.unix_path);
  if (opts_.tcp_port >= 0) tcp_listener_ = listen_tcp(opts_.tcp_port);
  if (!opts_.spool_dir.empty()) {
    fs::create_directories(fs::path(opts_.spool_dir) / "work");
    fs::create_directories(fs::path(opts_.spool_dir) / "out");
    recover_spool();
  }
}

int Server::port() const {
  return tcp_listener_.valid() ? bound_tcp_port(tcp_listener_) : -1;
}

bool Server::stopping() const {
  if (stop_.load(std::memory_order_relaxed)) return true;
  return opts_.stop_flag != nullptr && *opts_.stop_flag != 0;
}

ServeStats Server::stats() const {
  return collector_.snapshot(cache_, elapsed_since(start_));
}

void Server::run() {
  const bool accepting = unix_listener_.valid() || tcp_listener_.valid();
  {
    // Pool scope: its destructor drains every queued and in-flight request
    // before the final stats are written — that is the graceful part of
    // graceful shutdown.
    ThreadPool pool(opts_.jobs);
    auto last_scan = std::chrono::steady_clock::now() -
                     std::chrono::hours(1);  // force an immediate first scan
    auto last_metrics = std::chrono::steady_clock::now();
    const bool metrics_enabled =
        opts_.metrics_interval_seconds > 0 && !opts_.spool_dir.empty();
    while (!stopping()) {
      if (accepting) {
        std::optional<Socket> conn =
            accept_ready(unix_listener_, tcp_listener_, opts_.poll_seconds);
        if (conn) {
          collector_.enter_request();
          // ThreadPool tasks are std::function (copyable); Socket is
          // move-only, so it rides in a shared_ptr.
          auto shared = std::make_shared<Socket>(std::move(*conn));
          pool.submit([this, shared] { handle_connection(std::move(*shared)); });
        }
      } else {
        std::this_thread::sleep_for(
            std::chrono::duration<double>(opts_.poll_seconds));
      }
      if (!opts_.spool_dir.empty() &&
          elapsed_since(last_scan) >= opts_.poll_seconds) {
        scan_spool(pool);
        last_scan = std::chrono::steady_clock::now();
      }
      if (metrics_enabled &&
          elapsed_since(last_metrics) >= opts_.metrics_interval_seconds) {
        write_metrics_snapshot();
        last_metrics = std::chrono::steady_clock::now();
      }
    }
    // Stop accepting before draining: a client connecting now gets ECONNREFUSED
    // instead of a hung socket.
    unix_listener_.close();
    tcp_listener_.close();
  }
  if (!opts_.unix_path.empty()) {
    std::error_code ec;
    fs::remove(opts_.unix_path, ec);
  }
  if (opts_.metrics_interval_seconds > 0 && !opts_.spool_dir.empty())
    write_metrics_snapshot();  // in-flight work has drained; capture the end state
  write_final_stats();
}

void Server::write_metrics_snapshot() {
  try {
    write_file_atomic(fs::path(opts_.spool_dir) / "out" / "metrics.prom",
                      stats().to_prometheus());
  } catch (const std::exception& e) {
    PDC_LOG_WARN(std::string("serve: metrics snapshot failed: ") + e.what());
  }
}

void Server::write_final_stats() {
  if (opts_.stats_path.empty()) return;
  try {
    write_file_atomic(opts_.stats_path, stats().to_json() + "\n");
  } catch (const std::exception& e) {
    PDC_LOG_WARN(std::string("serve: final stats write failed: ") + e.what());
  }
}

void Server::handle_connection(Socket conn) {
  struct Leave {
    StatsCollector& c;
    ~Leave() { c.leave_request(); }
  } leave{collector_};
  try {
    conn.set_io_timeout(opts_.io_timeout_seconds);
    Request req;
    try {
      if (!read_request(conn, req)) return;  // client went away; not an error
    } catch (const std::exception& e) {
      collector_.count_request();
      collector_.count_error();
      write_response(conn, Response{false, "", e.what()});
      return;
    }
    const Response resp = dispatch(req);
    write_response(conn, resp);
    if (req.kind == RequestKind::Shutdown) request_stop();
  } catch (const std::exception& e) {
    // I/O failure talking to this client (timeout, reset). The request may
    // already have executed — its side effects (memo warmup) stand.
    PDC_LOG_WARN(std::string("serve: connection error: ") + e.what());
  }
}

Response Server::dispatch(const Request& req) {
  collector_.count_request();
  switch (req.kind) {
    case RequestKind::RunScenario: {
      collector_.count_scenario();
      return run_scenario(req.body);
    }
    case RequestKind::RunCampaign: {
      collector_.count_campaign();
      return run_campaign(req.body);
    }
    case RequestKind::Stats:
      collector_.count_stats();
      return Response{true, "stats", stats().to_json()};
    case RequestKind::Metrics:
      collector_.count_metrics();
      return Response{true, "metrics", stats().to_prometheus()};
    case RequestKind::Ping:
      collector_.count_ping();
      return Response{true, "pong", "pdc_serve"};
    case RequestKind::Shutdown:
      return Response{true, "bye", "draining"};
  }
  collector_.count_error();
  return Response{false, "", "unknown request"};
}

Response Server::run_scenario(const std::string& text) {
  const auto t0 = std::chrono::steady_clock::now();
  scenario::ScenarioSpec spec;
  try {
    spec = scenario::parse_scenario(text, opts_.base);
  } catch (const std::exception& e) {
    collector_.count_error();
    return Response{false, "", e.what()};
  }
  const std::string key = "scn:" + scenario::render_scenario(spec);
  if (std::optional<std::string> memo = cache_.get(key)) {
    collector_.record_latency(true, elapsed_since(t0));
    return Response{true, "hit", std::move(*memo)};
  }
  const scenario::RunRecord record = scenario::Runner{std::move(spec)}.try_run();
  std::string body = record.to_json();
  if (record.ok())
    cache_.put(key, body);
  else
    collector_.count_error();  // failed runs are served but never cached
  collector_.record_latency(false, elapsed_since(t0));
  return Response{true, "miss", std::move(body)};
}

Response Server::run_campaign(const std::string& text) {
  const auto t0 = std::chrono::steady_clock::now();
  campaign::CampaignSpec spec;
  try {
    spec = campaign::parse_campaign(text, opts_.base);
  } catch (const std::exception& e) {
    collector_.count_error();
    return Response{false, "", e.what()};
  }
  // Every cell goes through the same scenario memo cache a RUN scn request
  // uses, so a campaign warms the cache for later one-off queries (and vice
  // versa). Cells run sequentially in this worker; concurrency lives across
  // requests.
  std::vector<campaign::Outcome> outcomes;
  bool all_hits = true;
  std::size_t errors = 0;
  for (const campaign::CampaignRun& run : campaign::expand(spec)) {
    campaign::Outcome out;
    out.run = run;
    const std::string key = "scn:" + scenario::render_scenario(run.spec);
    std::string body;
    if (std::optional<std::string> memo = cache_.get(key)) {
      out.skipped = true;  // served from memory, not simulated
      body = std::move(*memo);
    } else {
      all_hits = false;
      const scenario::RunRecord record = scenario::Runner{run.spec}.try_run();
      body = record.to_json();
      if (record.ok()) cache_.put(key, body);
    }
    out.record_json = std::move(body);
    try {
      const JsonValue doc = parse_json(out.record_json);
      if (doc.has("error") && !doc.at("error").as_string().empty())
        out.error = doc.at("error").as_string();
      else
        out.metrics = campaign::record_metrics(doc);
    } catch (const std::exception& e) {
      out.error = e.what();
    }
    if (!out.ok()) ++errors;
    outcomes.push_back(std::move(out));
  }
  if (errors != 0) collector_.count_error();
  campaign::CampaignReport report =
      campaign::aggregate_outcomes(spec.name, outcomes, /*jobs=*/1,
                                   /*wall_seconds=*/0.0);
  // The canonical form is a pure function of the run records — a repeated
  // campaign request is byte-identical, wall-clock noise excluded.
  std::string body = report.to_json(/*canonical=*/true);
  const bool hit = all_hits && !outcomes.empty();
  collector_.record_latency(hit, elapsed_since(t0));
  return Response{true, hit ? "hit" : "miss", std::move(body)};
}

void Server::recover_spool() {
  // A previous daemon died holding claims: move its work files back into the
  // spool root so this daemon (or a peer) re-claims them. Leftover output
  // temp files are dropped.
  const fs::path work = fs::path(opts_.spool_dir) / "work";
  std::error_code ec;
  for (const fs::directory_entry& entry : fs::directory_iterator(work, ec)) {
    if (!entry.is_regular_file()) continue;
    std::error_code rec;
    fs::rename(entry.path(), fs::path(opts_.spool_dir) / entry.path().filename(),
               rec);
  }
  const fs::path out = fs::path(opts_.spool_dir) / "out";
  for (const fs::directory_entry& entry : fs::directory_iterator(out, ec)) {
    if (entry.path().extension() == ".tmp") fs::remove(entry.path(), ec);
  }
}

void Server::scan_spool(ThreadPool& pool) {
  std::error_code ec;
  std::vector<fs::path> ready;
  for (const fs::directory_entry& entry :
       fs::directory_iterator(opts_.spool_dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext == ".scn" || ext == ".cmp") ready.push_back(entry.path());
  }
  for (const fs::path& path : ready) {
    const fs::path claimed = fs::path(opts_.spool_dir) / "work" / path.filename();
    std::error_code rec;
    fs::rename(path, claimed, rec);  // atomic claim; a racing daemon loses
    if (rec) continue;
    collector_.enter_request();
    const std::string claimed_str = claimed.string();
    const std::string stem = path.stem().string();
    pool.submit([this, claimed_str, stem] { process_spool_file(claimed_str, stem); });
  }
}

void Server::process_spool_file(const std::string& claimed_path,
                                const std::string& stem) {
  struct Leave {
    StatsCollector& c;
    ~Leave() { c.leave_request(); }
  } leave{collector_};
  collector_.count_request();
  collector_.count_spool_job();
  const fs::path claimed(claimed_path);
  std::string text;
  Response resp;
  if (!read_file(claimed, text)) {
    collector_.count_error();
    resp = Response{false, "", "cannot read spool file"};
  } else if (claimed.extension() == ".cmp") {
    collector_.count_campaign();
    resp = run_campaign(text);
  } else {
    collector_.count_scenario();
    resp = run_scenario(text);
  }
  const fs::path out =
      fs::path(opts_.spool_dir) / "out" / (stem + ".json");
  try {
    if (resp.ok)
      write_file_atomic(out, resp.body + "\n");
    else
      write_file_atomic(out, "{\"error\": " + json_escape(resp.body) + "}\n");
    std::error_code ec;
    fs::remove(claimed, ec);  // job done; the claim file has served its purpose
  } catch (const std::exception& e) {
    // Leave the claim in work/ — a restart recovers and retries it.
    PDC_LOG_WARN("serve: spool output failed for " + stem + ": " + e.what());
  }
}

}  // namespace pdc::serve
