// Fig. 10 (paper §IV-B.3): Stage-1 comparison of the reference execution
// time against the dPerf prediction on the identical cluster platform, GCC
// optimization level 3. The two curves must nearly coincide ("the reference
// time and the prediction calculated with dPerf are very close").
//
// One scenario per peer count with mode=both: the Runner executes the
// reference, replays the traces, and reports the error itself.
#include <cmath>
#include <cstdio>

#include "experiments/harness.hpp"
#include "scenario/runner.hpp"
#include "support/table.hpp"

int main() {
  using namespace pdc;
  scenario::RunSpec base = scenario::RunSpec::from_env();
  base.level = ir::OptLevel::O3;
  base.mode = scenario::Mode::Both;
  std::printf("Fig. 10 -- Stage-1 reference vs dPerf prediction [s], optimization level 3\n\n");

  TextTable table({"Peers", "reference", "dPerf prediction", "error %"});
  double worst_err = 0;
  for (int peers : experiments::paper_peer_counts()) {
    scenario::RunSpec run = base;
    run.peers = peers;
    const scenario::Runner runner{{"fig10", scenario::PlatformSpec::grid5000(), run}};
    const scenario::RunRecord rec = runner.run();
    const double err = 100.0 * rec.prediction_error.value_or(0);
    worst_err = std::max(worst_err, err);
    table.add_row({std::to_string(peers), TextTable::num(rec.reference->solve_seconds, 2),
                   TextTable::num(rec.predicted->solve_seconds, 2), TextTable::num(err, 1)});
    std::printf("  ... %d peers done\n", peers);
  }
  std::printf("\n%s\n", table.render().c_str());
  std::printf("worst prediction error: %.1f%% (paper: curves nearly coincide)\n", worst_err);
  return 0;
}
