// Campaign executor: aggregation, persistence + resume, structured errors
// for bad grid points, and report serialization.
#include "campaign/executor.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

namespace pdc::campaign {
namespace {

namespace fs = std::filesystem;

/// Tiny, fast grid: 1 point x 2 repetitions on the LAN model (~10 ms/run).
CampaignSpec tiny_campaign() {
  CampaignSpec spec;
  spec.name = "tiny";
  spec.base.name = "tiny";
  spec.base.platform = scenario::PlatformSpec::lan();
  spec.base.run.mode = scenario::Mode::Reference;
  spec.base.run.peers = 2;
  spec.base.run.grid_n = 34;
  spec.base.run.iters = 6;
  spec.base.run.bench_n = 18;
  spec.base.run.bench_iters = 3;
  spec.base.run.bench_rcheck = 2;
  spec.repetitions = 2;
  return spec;
}

/// Fresh scratch directory under the test's working dir.
struct ScratchDir {
  fs::path path;
  explicit ScratchDir(const char* name) : path(fs::path("campaign_test_out") / name) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~ScratchDir() { fs::remove_all(path); }
};

TEST(CampaignExecutor, AggregatesRepetitionsPerPoint) {
  Executor executor{tiny_campaign()};
  const CampaignReport report = executor.execute();
  EXPECT_EQ(report.total, 2u);
  EXPECT_EQ(report.executed, 2u);
  EXPECT_EQ(report.skipped, 0u);
  EXPECT_EQ(report.errors, 0u);
  ASSERT_EQ(report.points.size(), 1u);
  const PointReport& p = report.points[0];
  EXPECT_EQ(p.repetitions, 2);
  EXPECT_EQ(p.errors, 0);
  ASSERT_TRUE(p.metrics.count("reference_solve_seconds"));
  const Summary& s = p.metrics.at("reference_solve_seconds");
  EXPECT_EQ(s.n, 2u);
  EXPECT_GT(s.mean, 0.0);
  // The simulator is deterministic: identical repetitions, zero spread.
  EXPECT_EQ(s.stddev, 0.0);
  EXPECT_EQ(s.min, s.max);
  EXPECT_EQ(s.min, s.mean);
}

TEST(CampaignExecutor, PersistsAndResumes) {
  ScratchDir dir{"resume"};
  ExecutorOptions opts;
  opts.out_dir = dir.path.string();

  Executor first{tiny_campaign(), opts};
  const CampaignReport r1 = first.execute();
  EXPECT_EQ(r1.executed, 2u);
  EXPECT_EQ(r1.skipped, 0u);
  for (const CampaignRun& run : first.runs())
    EXPECT_TRUE(fs::exists(dir.path / "runs" / (run.key + ".json"))) << run.key;
  EXPECT_TRUE(fs::exists(dir.path / "report.json"));
  EXPECT_TRUE(fs::exists(dir.path / "report.csv"));

  // Restart: every completed record is loaded, nothing re-executes, and the
  // aggregate is identical.
  Executor second{tiny_campaign(), opts};
  const CampaignReport r2 = second.execute();
  EXPECT_EQ(r2.executed, 0u);
  EXPECT_EQ(r2.skipped, 2u);
  EXPECT_EQ(r2.errors, 0u);
  ASSERT_EQ(r2.points.size(), 1u);
  EXPECT_EQ(r2.points[0].metrics.at("reference_solve_seconds").mean,
            r1.points[0].metrics.at("reference_solve_seconds").mean);
  for (const Outcome& out : second.outcomes()) EXPECT_TRUE(out.skipped);

  // A record with an error (or a truncated file) is not trusted on resume.
  const fs::path victim = dir.path / "runs" / (second.runs()[0].key + ".json");
  std::ofstream(victim, std::ios::trunc) << "{ \"scenario\": ";
  Executor third{tiny_campaign(), opts};
  const CampaignReport r3 = third.execute();
  EXPECT_EQ(r3.executed, 1u);
  EXPECT_EQ(r3.skipped, 1u);

  // A parseable record whose metrics do not extract (older format) is
  // re-executed and must not stay counted as skipped.
  std::ofstream(victim, std::ios::trunc)
      << "{\"scenario\": \"tiny/" << third.runs()[0].key
      << "\", \"reference\": {\"total_seconds\": 1.0}}";
  Executor fourth{tiny_campaign(), opts};
  const CampaignReport r4 = fourth.execute();
  EXPECT_EQ(r4.executed, 1u);
  EXPECT_EQ(r4.skipped, 1u);
  EXPECT_FALSE(fourth.outcomes()[0].skipped);
}

TEST(CampaignExecutor, ResumeRejectsRecordsFromDifferentBaseScenario) {
  ScratchDir dir{"stale"};
  ExecutorOptions opts;
  opts.out_dir = dir.path.string();
  Executor first{tiny_campaign(), opts};
  EXPECT_EQ(first.execute().executed, 2u);

  // Editing the base scenario (bigger grid, different mode) changes every
  // result; the old records must be re-executed, not silently resumed.
  CampaignSpec edited = tiny_campaign();
  edited.base.run.grid_n = 66;
  Executor second{edited, opts};
  const CampaignReport r2 = second.execute();
  EXPECT_EQ(r2.executed, 2u);
  EXPECT_EQ(r2.skipped, 0u);

  // Unchanged spec still resumes the (rewritten) records.
  Executor third{edited, opts};
  EXPECT_EQ(third.execute().skipped, 2u);

  // Platform parameter edits (same kind, same label, different speed)
  // invalidate records too — the canonical spec text is the identity.
  CampaignSpec retuned = edited;
  std::get<net::StarSpec>(retuned.base.platform.spec).host_speed_hz = 2e9;
  Executor fourth{retuned, opts};
  const CampaignReport r4 = fourth.execute();
  EXPECT_EQ(r4.executed, 2u);
  EXPECT_EQ(r4.skipped, 0u);
}

TEST(CampaignExecutor, RecordWriteFailureIsARunErrorNotACrash) {
  ScratchDir dir{"writefail"};
  ExecutorOptions opts;
  opts.out_dir = dir.path.string();
  opts.jobs = 2;  // the failure happens inside a pooled worker
  CampaignSpec spec = tiny_campaign();
  spec.repetitions = 1;
  Executor executor{spec, opts};
  // Occupy the record's temp path with a directory: the atomic write
  // cannot open it, and the failure must come back as a structured error.
  fs::create_directories(dir.path / "runs" /
                         (executor.runs()[0].key + ".json.tmp"));
  const CampaignReport report = executor.execute();
  EXPECT_EQ(report.total, 1u);
  EXPECT_EQ(report.errors, 1u);
  EXPECT_FALSE(executor.outcomes()[0].ok());
}

TEST(CampaignExecutor, NoResumeReexecutesEverything) {
  ScratchDir dir{"noresume"};
  ExecutorOptions opts;
  opts.out_dir = dir.path.string();
  Executor first{tiny_campaign(), opts};
  first.execute();
  opts.resume = false;
  Executor second{tiny_campaign(), opts};
  const CampaignReport r2 = second.execute();
  EXPECT_EQ(r2.executed, 2u);
  EXPECT_EQ(r2.skipped, 0u);
}

TEST(CampaignExecutor, BadGridPointRecordsErrorInsteadOfThrowing) {
  CampaignSpec spec = tiny_campaign();
  spec.repetitions = 1;
  // One healthy platform, one platform file that cannot be opened: the bad
  // cell must fail structurally without killing the campaign.
  spec.platforms = {scenario::PlatformSpec::lan(),
                    scenario::PlatformSpec::from_file("does_not_exist.plat")};
  Executor executor{spec};
  const CampaignReport report = executor.execute();
  EXPECT_EQ(report.total, 2u);
  EXPECT_EQ(report.errors, 1u);
  ASSERT_EQ(report.points.size(), 2u);
  EXPECT_EQ(report.points[0].errors, 0);
  EXPECT_EQ(report.points[1].errors, 1);
  EXPECT_EQ(report.points[1].repetitions, 0);
  const Outcome& bad = executor.outcomes()[1];
  EXPECT_FALSE(bad.ok());
  EXPECT_NE(bad.error.find("does_not_exist.plat"), std::string::npos) << bad.error;
  // The failed record itself carries the error field through JSON.
  const JsonValue doc = parse_json(bad.record_json);
  EXPECT_TRUE(doc.has("error"));
  EXPECT_FALSE(doc.has("reference"));
  // The all-failed point still surfaces in the CSV (placeholder metric row).
  const std::string csv = report.to_csv();
  EXPECT_NE(csv.find(report.points[1].key + ",file:does_not_exist.plat,file,2,O0,"
                                            "sync,hierarchical,42,0,1,-,0,"),
            std::string::npos)
      << csv;
}

TEST(CampaignExecutor, ReportSerializesAsJsonAndCsv) {
  CampaignSpec spec = tiny_campaign();
  spec.base.run.mode = scenario::Mode::Both;  // exercise every metric
  spec.repetitions = 1;
  Executor executor{spec};
  const CampaignReport report = executor.execute();

  const JsonValue doc = parse_json(report.to_json());
  EXPECT_EQ(doc.at("campaign").as_string(), "tiny");
  EXPECT_EQ(doc.at("total_runs").as_double(), 1.0);
  const JsonValue& point = doc.at("points").as_array().at(0);
  EXPECT_EQ(point.at("peers").as_double(), 2.0);
  const JsonValue& metrics = point.at("metrics");
  for (const char* key : {"reference_solve_seconds", "predicted_solve_seconds",
                          "prediction_error"}) {
    ASSERT_TRUE(metrics.has(key)) << key;
    EXPECT_EQ(metrics.at(key).at("n").as_double(), 1.0);
    // n == 1: spread and confidence interval are exactly zero.
    EXPECT_EQ(metrics.at(key).at("stddev").as_double(), 0.0);
    EXPECT_EQ(metrics.at(key).at("ci95_half").as_double(), 0.0);
  }

  const std::string csv = report.to_csv();
  std::istringstream lines(csv);
  std::string header;
  std::getline(lines, header);
  EXPECT_EQ(header,
            "campaign,point,platform,kind,peers,opt,scheme,alloc,seed,repetitions,"
            "errors,metric,n,mean,stddev,min,max,p50,p95,ci95_half");
  std::size_t rows = 0;
  for (std::string line; std::getline(lines, line);) ++rows;
  EXPECT_EQ(rows, report.points[0].metrics.size());
}

TEST(CampaignExecutor, RecordMetricsExtraction) {
  const JsonValue doc = parse_json(R"({
    "scenario": "x",
    "reference": {"solve_seconds": 1.5, "total_seconds": 2.0},
    "predicted": {"solve_seconds": 1.25, "total_seconds": 1.75},
    "prediction_error": 0.1
  })");
  const auto m = record_metrics(doc);
  EXPECT_DOUBLE_EQ(m.at("reference_solve_seconds"), 1.5);
  EXPECT_DOUBLE_EQ(m.at("reference_total_seconds"), 2.0);
  EXPECT_DOUBLE_EQ(m.at("predicted_solve_seconds"), 1.25);
  EXPECT_DOUBLE_EQ(m.at("predicted_total_seconds"), 1.75);
  EXPECT_DOUBLE_EQ(m.at("prediction_error"), 0.1);
  EXPECT_EQ(record_metrics(parse_json("{\"scenario\": \"y\"}")).size(), 0u);
}

}  // namespace
}  // namespace pdc::campaign
