#include "churn/spec.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>
#include <sstream>
#include <stdexcept>

#include "support/json.hpp"
#include "support/rng.hpp"

namespace pdc::churn {

namespace {

/// Independent per-purpose stream: SplitMix64 decorrelates even adjacent
/// seeds, so mixing a purpose constant is enough for disjoint streams.
Rng stream(std::uint64_t seed, std::uint64_t purpose) {
  return Rng{seed ^ (0x9E3779B97F4A7C15ULL * (purpose + 1))};
}

/// Inverse-CDF exponential draw with the given rate (events per second).
double exponential(Rng& rng, double rate) {
  return -std::log(1.0 - rng.uniform(0.0, 1.0)) / rate;
}

double parse_number(const std::string& text, const char* what) {
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  // Non-finite values are never meaningful here: `horizon inf` would make
  // model expansion unbounded and `at=nan` would break the engine's event
  // ordering, so reject them at parse time with a diagnostic.
  if (end == text.c_str() || *end != '\0' || !std::isfinite(v))
    throw std::invalid_argument(std::string("bad churn ") + what + " '" + text + "'");
  return v;
}

int parse_index(const std::string& text, const char* what) {
  const double v = parse_number(text, what);
  // The range check also keeps the cast below defined (double -> int
  // overflow is UB).
  if (v != std::floor(v) || std::abs(v) > 2147483647.0)
    throw std::invalid_argument(std::string("bad churn ") + what + " '" + text + "'");
  return static_cast<int>(v);
}

/// key=value map for one `churn event <kind> ...` line; throws on dupes and
/// malformed pairs so typos surface instead of silently applying defaults.
std::map<std::string, std::string> event_params(const std::vector<std::string>& tok,
                                                std::size_t first) {
  std::map<std::string, std::string> out;
  for (std::size_t i = first; i < tok.size(); ++i) {
    const auto eq = tok[i].find('=');
    if (eq == std::string::npos || eq == 0)
      throw std::invalid_argument("expected key=value, got '" + tok[i] + "'");
    if (!out.emplace(tok[i].substr(0, eq), tok[i].substr(eq + 1)).second)
      throw std::invalid_argument("duplicate event key '" + tok[i].substr(0, eq) + "'");
  }
  return out;
}

ChurnEvent parse_event(const std::vector<std::string>& tok) {
  if (tok.size() < 3)
    throw std::invalid_argument(
        "expected: churn event <crash-peer|join|crash-tracker|degrade|restore> "
        "at=<s> ...");
  const std::string& kind = tok[2];
  ChurnEvent ev;
  const char* target_key = nullptr;
  bool with_scale = false;
  if (kind == "crash-peer") {
    ev.kind = ChurnEvent::Kind::PeerCrash;
    target_key = "peer";
  } else if (kind == "join") {
    ev.kind = ChurnEvent::Kind::PeerJoin;
  } else if (kind == "crash-tracker") {
    ev.kind = ChurnEvent::Kind::TrackerCrash;
    target_key = "tracker";
  } else if (kind == "degrade") {
    ev.kind = ChurnEvent::Kind::LinkDegrade;
    target_key = "link";
    with_scale = true;
    ev.scale = 0.5;  // halve by default, like ChurnSpec::link_degrade_scale
  } else if (kind == "restore") {
    ev.kind = ChurnEvent::Kind::LinkRestore;
    target_key = "link";
  } else {
    throw std::invalid_argument("unknown churn event kind '" + kind + "'");
  }
  bool saw_at = false;
  for (const auto& [key, value] : event_params(tok, 3)) {
    if (key == "at") {
      ev.at = parse_number(value, "event time");
      if (ev.at < 0) throw std::invalid_argument("churn event time must be >= 0");
      saw_at = true;
    } else if (target_key != nullptr && key == target_key) {
      ev.target = parse_index(value, target_key);
      if (ev.target < 0) throw std::invalid_argument("churn event target must be >= 0");
    } else if (with_scale && key == "scale") {
      ev.scale = parse_number(value, "scale");
      if (ev.scale <= 0 || ev.scale > 1)
        throw std::invalid_argument("churn degrade scale must be in (0, 1]");
    } else {
      throw std::invalid_argument("unknown churn event key '" + key + "' for '" + kind +
                                  "'");
    }
  }
  if (!saw_at) throw std::invalid_argument("churn event needs at=<seconds>");
  return ev;
}

std::string render_event(const ChurnEvent& ev) {
  std::ostringstream out;
  out << "churn event " << churn_event_kind_name(ev.kind)
      << " at=" << format_shortest(ev.at);
  switch (ev.kind) {
    case ChurnEvent::Kind::PeerCrash:
      if (ev.target >= 0) out << " peer=" << ev.target;
      break;
    case ChurnEvent::Kind::PeerJoin:
      break;
    case ChurnEvent::Kind::TrackerCrash:
      if (ev.target >= 0) out << " tracker=" << ev.target;
      break;
    case ChurnEvent::Kind::LinkDegrade:
      if (ev.target >= 0) out << " link=" << ev.target;
      out << " scale=" << format_shortest(ev.scale);
      break;
    case ChurnEvent::Kind::LinkRestore:
      if (ev.target >= 0) out << " link=" << ev.target;
      break;
  }
  return out.str();
}

}  // namespace

const char* churn_event_kind_name(ChurnEvent::Kind k) {
  switch (k) {
    case ChurnEvent::Kind::PeerCrash: return "crash-peer";
    case ChurnEvent::Kind::PeerJoin: return "join";
    case ChurnEvent::Kind::TrackerCrash: return "crash-tracker";
    case ChurnEvent::Kind::LinkDegrade: return "degrade";
    case ChurnEvent::Kind::LinkRestore: return "restore";
  }
  return "?";
}

std::uint64_t injection_seed(const ChurnSpec& spec, std::uint64_t run_seed) {
  return (spec.seed != 0 ? spec.seed : run_seed) ^ 0xC45C3A1EULL;
}

std::vector<ChurnEvent> expand_events(const ChurnSpec& spec, int peers,
                                      std::uint64_t run_seed) {
  std::vector<ChurnEvent> out = spec.events;
  const std::uint64_t seed = spec.seed != 0 ? spec.seed : run_seed;

  if (spec.peer_crash_rate > 0) {
    // One independent stream per worker slot: the timeline of worker i does
    // not shift when `peers` (or any other axis) changes.
    for (int i = 0; i < peers; ++i) {
      Rng rng = stream(seed, 0x100 + static_cast<std::uint64_t>(i));
      const double lifetime = exponential(rng, spec.peer_crash_rate);
      if (lifetime >= spec.horizon) continue;
      out.push_back({ChurnEvent::Kind::PeerCrash, lifetime, i, 1.0});
      if (spec.mean_downtime > 0) {
        const double downtime = exponential(rng, 1.0 / spec.mean_downtime);
        out.push_back({ChurnEvent::Kind::PeerJoin, lifetime + downtime, -1, 1.0});
      }
    }
  }

  if (spec.link_degrade_rate > 0) {
    Rng rng = stream(seed, 0x200);
    for (double t = exponential(rng, spec.link_degrade_rate); t < spec.horizon;
         t += exponential(rng, spec.link_degrade_rate)) {
      out.push_back({ChurnEvent::Kind::LinkDegrade, t, -1, spec.link_degrade_scale});
      if (spec.mean_degrade_time > 0) {
        const double hold = exponential(rng, 1.0 / spec.mean_degrade_time);
        out.push_back({ChurnEvent::Kind::LinkRestore, t + hold, -1, 1.0});
      }
    }
  }

  // Time order; explicit listing order breaks ties (stable sort).
  std::stable_sort(out.begin(), out.end(),
                   [](const ChurnEvent& a, const ChurnEvent& b) { return a.at < b.at; });
  return out;
}

void parse_churn_tokens(const std::vector<std::string>& tok, ChurnSpec& spec) {
  if (tok.size() < 2)
    throw std::invalid_argument("expected: churn <key> <value ...>");
  const std::string& key = tok[1];
  if (key == "event") {
    spec.events.push_back(parse_event(tok));
    return;
  }
  if (tok.size() != 3)
    throw std::invalid_argument("expected: churn " + key + " <value>");
  const std::string& value = tok[2];
  if (key == "rate") {
    spec.peer_crash_rate = parse_number(value, "rate");
    if (spec.peer_crash_rate < 0) throw std::invalid_argument("churn rate must be >= 0");
  } else if (key == "downtime") {
    spec.mean_downtime = parse_number(value, "downtime");
    if (spec.mean_downtime < 0) throw std::invalid_argument("churn downtime must be >= 0");
  } else if (key == "link_rate") {
    spec.link_degrade_rate = parse_number(value, "link_rate");
    if (spec.link_degrade_rate < 0)
      throw std::invalid_argument("churn link_rate must be >= 0");
  } else if (key == "link_scale") {
    spec.link_degrade_scale = parse_number(value, "link_scale");
    if (spec.link_degrade_scale <= 0 || spec.link_degrade_scale > 1)
      throw std::invalid_argument("churn link_scale must be in (0, 1]");
  } else if (key == "link_time") {
    spec.mean_degrade_time = parse_number(value, "link_time");
    if (spec.mean_degrade_time < 0)
      throw std::invalid_argument("churn link_time must be >= 0");
  } else if (key == "horizon") {
    spec.horizon = parse_number(value, "horizon");
    if (spec.horizon < 0) throw std::invalid_argument("churn horizon must be >= 0");
  } else if (key == "seed") {
    char* end = nullptr;
    spec.seed = std::strtoull(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0')
      throw std::invalid_argument("bad churn seed '" + value + "'");
  } else if (key == "attempts") {
    spec.max_attempts = parse_index(value, "attempts");
    if (spec.max_attempts < 1) throw std::invalid_argument("churn attempts must be >= 1");
  } else {
    throw std::invalid_argument("unknown churn key '" + key + "'");
  }
}

std::string render_churn_lines(const ChurnSpec& spec) {
  if (spec == ChurnSpec{}) return "";
  std::ostringstream out;
  out << "churn rate " << format_shortest(spec.peer_crash_rate) << "\n";
  out << "churn downtime " << format_shortest(spec.mean_downtime) << "\n";
  out << "churn link_rate " << format_shortest(spec.link_degrade_rate) << "\n";
  out << "churn link_scale " << format_shortest(spec.link_degrade_scale) << "\n";
  out << "churn link_time " << format_shortest(spec.mean_degrade_time) << "\n";
  out << "churn horizon " << format_shortest(spec.horizon) << "\n";
  out << "churn seed " << spec.seed << "\n";
  out << "churn attempts " << spec.max_attempts << "\n";
  for (const ChurnEvent& ev : spec.events) out << render_event(ev) << "\n";
  return out.str();
}

}  // namespace pdc::churn
