// Builders for the three platforms of the paper's evaluation (§IV-A):
//
//  * Stage-1:  Grid'5000 Bordeplage cluster — 1 Gbps NICs @ 100 us,
//              10 Gbps backbone @ 100 us, Intel Xeon EM64T 3 GHz nodes;
//  * Stage-2A: "Daisy" xDSL topology (Fig. 8) — 5 central routers on a
//              100 Gbps ring, 5 petals of 10 routers (10 Gbps links),
//              4 DSLAMs per petal router (10 Gbps uplinks), 5 nodes per
//              DSLAM at 5..10 Mbps randomly assigned (one DSLAM carries
//              5+24 extra nodes so the total is 1024);
//  * Stage-2B: a regular LAN — 1 Gbps backbone, 100 Mbps per node.
#pragma once

#include "net/platform.hpp"
#include "support/rng.hpp"

namespace pdc::net {

/// Star-with-backbone topology used for both the cluster and the LAN:
/// every host has a private NIC link to the switch, and every host-to-host
/// route additionally crosses one shared backbone link.
struct StarSpec {
  int hosts = 2;
  double host_speed_hz = 3e9;  // paper: Xeon EM64T 3 GHz, one core per node
  // Bandwidths default to the Stage-1 cluster fabric; a zero-bandwidth link
  // would starve every flow crossing it (rate 0 forever).
  double nic_bw_Bps = 1e9 / 8;
  Time nic_latency = 100e-6;
  double backbone_bw_Bps = 10e9 / 8;
  Time backbone_latency = 100e-6;
  Ipv4 base_ip{10, 0, 0, 1};
  std::string name_prefix = "node";
};

Platform build_star(const StarSpec& spec);

/// The paper's Stage-1 Bordeplage cluster with `hosts` nodes.
StarSpec bordeplage_cluster_spec(int hosts);

/// The paper's Stage-2B LAN with `hosts` nodes.
StarSpec lan_spec(int hosts);

/// Stage-2A Daisy xDSL topology (Fig. 8). Last-mile bandwidths are drawn
/// uniformly from [last_mile_min_Bps, last_mile_max_Bps] using `rng`, as the
/// paper randomly assigns 5..10 Mbps.
struct DaisySpec {
  int central_routers = 5;
  int routers_per_petal = 10;
  int dslams_per_router = 4;
  int nodes_per_dslam = 5;
  int extra_nodes_on_one_dslam = 24;  // "exceptionally, one DSLAM connects 5+24 nodes"
  double host_speed_hz = 3e9;         // same machines as the cluster (paper §IV-A.3)
  double ring_bw_Bps = 100e9 / 8;     // l1 @ 100 Gbps
  double petal_bw_Bps = 10e9 / 8;     // l2 @ 10 Gbps
  double dslam_up_bw_Bps = 10e9 / 8;  // DSLAM->router @ 10 Gbps
  double last_mile_min_Bps = 5e6 / 8;
  double last_mile_max_Bps = 10e6 / 8;
  Time router_latency = 200 * 1e-6;     // per backbone hop
  Time last_mile_latency = 2 * 1e-3;    // DSL line latency
};

Platform build_daisy(const DaisySpec& spec, Rng& rng);

/// Total number of end hosts `build_daisy` creates for a spec.
int daisy_host_count(const DaisySpec& spec);

/// Heterogeneous two-tier cluster federation: `clusters` site-local stars
/// (per-host NIC links into a site switch) whose switches hang off one WAN
/// core router over long-haul uplinks. Per-site CPU speed cycles through
/// `site_speeds_hz`, modelling federated sites of different hardware
/// generations; intra-site traffic crosses two NICs, inter-site traffic
/// additionally crosses both site uplinks (routes via BFS).
struct FederationSpec {
  int clusters = 3;
  int hosts_per_cluster = 8;                          // total hosts = clusters * this
  std::vector<double> site_speeds_hz{3e9, 2.4e9, 1.8e9};  // cycled across sites
  double nic_bw_Bps = 1e9 / 8;                        // intra-site host NICs
  Time nic_latency = 100 * 1e-6;
  double wan_bw_Bps = 1e9 / 8;                        // site switch <-> core
  Time wan_latency = 5 * 1e-3;
};

Platform build_federation(const FederationSpec& spec);
int federation_host_count(const FederationSpec& spec);

/// Random WAN with heterogeneous CPUs: `routers` core routers joined by a
/// random spanning tree plus `extra_links` shortcut links, and `hosts` end
/// hosts each hanging off a random router. Host CPU speed and access
/// bandwidth are drawn uniformly from the given ranges, core link latency
/// from [core_lat_min, core_lat_max] — an internet-like topology where both
/// compute power and connectivity vary per peer. Deterministic given `rng`.
struct WanSpec {
  int hosts = 16;
  int routers = 8;
  int extra_links = 4;  // shortcuts beyond the spanning tree
  double speed_min_hz = 1.5e9;
  double speed_max_hz = 4e9;
  double access_bw_min_Bps = 20e6 / 8;
  double access_bw_max_Bps = 1e9 / 8;
  Time access_latency = 500 * 1e-6;
  double core_bw_Bps = 10e9 / 8;
  Time core_lat_min = 1 * 1e-3;
  Time core_lat_max = 20 * 1e-3;
};

Platform build_wan(const WanSpec& spec, Rng& rng);

/// Barabási–Albert scale-free topology: a router core grown by preferential
/// attachment (seed clique of m+1 routers, each later router adding `m`
/// links to routers sampled proportionally to degree), with `hosts` end
/// hosts attached preferentially by router degree — hubs serve many peers,
/// leaf routers few, the degree distribution heavy-tailed like real P2P
/// overlays. Hosts are *emitted* router-major with contiguous IPs so the
/// IP-prefix proximity metric correlates with network locality and
/// rank-neighbor traffic stays router-local. Deterministic given `rng`;
/// hierarchical routing is enabled on the result.
struct ScaleFreeSpec {
  int hosts = 64;
  int routers = 16;
  int m = 2;  // core links added per new router
  double host_speed_hz = 3e9;
  double access_bw_Bps = 100e6 / 8;
  Time access_latency = 300 * 1e-6;
  double core_bw_Bps = 10e9 / 8;
  Time core_latency = 1 * 1e-3;
  Ipv4 base_ip{10, 64, 0, 1};
};

Platform build_scale_free(const ScaleFreeSpec& spec, Rng& rng);

/// Watts–Strogatz small-world topology: routers on a ring lattice of even
/// degree `k`, with every lattice chord beyond the base ring rewired to a
/// uniformly random router with probability `beta` (the base ring is kept,
/// so the core is connected for every draw). Hosts attach to uniformly
/// random routers and are emitted router-major with contiguous IPs, like
/// the scale-free builder. Deterministic given `rng`; hierarchical routing
/// is enabled on the result.
struct SmallWorldSpec {
  int hosts = 64;
  int routers = 16;
  int k = 4;          // ring-lattice degree (rounded down to even)
  double beta = 0.1;  // chord rewiring probability
  double host_speed_hz = 3e9;
  double access_bw_Bps = 100e6 / 8;
  Time access_latency = 300 * 1e-6;
  double core_bw_Bps = 10e9 / 8;
  Time core_latency = 1 * 1e-3;
  Ipv4 base_ip{10, 32, 0, 1};
};

Platform build_small_world(const SmallWorldSpec& spec, Rng& rng);

}  // namespace pdc::net
