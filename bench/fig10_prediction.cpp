// Fig. 10 (paper §IV-B.3): Stage-1 comparison of the reference execution
// time against the dPerf prediction on the identical cluster platform, GCC
// optimization level 3. The two curves must nearly coincide ("the reference
// time and the prediction calculated with dPerf are very close").
#include <cmath>
#include <cstdio>

#include "experiments/harness.hpp"
#include "support/table.hpp"

int main() {
  using namespace pdc;
  const auto setup = experiments::PaperSetup::from_env();
  const ir::OptLevel lvl = ir::OptLevel::O3;
  std::printf("Fig. 10 -- Stage-1 reference vs dPerf prediction [s], optimization level 3\n\n");

  TextTable table({"Peers", "reference", "dPerf prediction", "error %"});
  double worst_err = 0;
  for (int peers : experiments::paper_peer_counts()) {
    const double ref =
        experiments::reference_seconds(experiments::Topology::Grid5000, peers, lvl, setup);
    auto traces = experiments::traces_for(peers, lvl, setup);
    const double pred = experiments::predicted_seconds(experiments::Topology::Grid5000,
                                                       peers, lvl, setup, std::move(traces));
    const double err = 100.0 * std::fabs(pred - ref) / ref;
    worst_err = std::max(worst_err, err);
    table.add_row({std::to_string(peers), TextTable::num(ref, 2), TextTable::num(pred, 2),
                   TextTable::num(err, 1)});
    std::printf("  ... %d peers done\n", peers);
  }
  std::printf("\n%s\n", table.render().c_str());
  std::printf("worst prediction error: %.1f%% (paper: curves nearly coincide)\n", worst_err);
  return 0;
}
